// Package trend implements burst detection over story activity — the
// "trend detection" application the paper motivates in §1 ("recovering
// the evolution and the dynamics of news stories across time is of
// tremendous value in different application domains, ranging from trend
// detection to economic analysis") and the temporal-pattern analysis the
// political-forecasting use case relies on.
//
// The detector buckets a story's snippet timestamps into fixed-width
// intervals and scores each bucket's activity against the story's own
// baseline with a z-score; runs of elevated buckets become bursts. On top
// of per-story bursts, Trending ranks stories by their activity in a
// query window relative to history.
package trend

import (
	"math"
	"sort"
	"time"

	"repro/internal/event"
)

// Config parameterises burst detection.
type Config struct {
	// Bucket is the histogram bucket width (default 24h).
	Bucket time.Duration
	// Threshold is the z-score above which a bucket counts as bursting
	// (default 2.0).
	Threshold float64
	// MinSnippets is the minimum story size to analyse (default 4).
	MinSnippets int
}

// DefaultConfig returns the standard settings.
func DefaultConfig() Config {
	return Config{Bucket: 24 * time.Hour, Threshold: 2.0, MinSnippets: 4}
}

func (c Config) withDefaults() Config {
	if c.Bucket <= 0 {
		c.Bucket = 24 * time.Hour
	}
	if c.Threshold <= 0 {
		c.Threshold = 2.0
	}
	if c.MinSnippets <= 0 {
		c.MinSnippets = 4
	}
	return c
}

// Burst is one detected activity burst of a story.
type Burst struct {
	Start, End time.Time
	Snippets   int     // snippets inside the burst
	Score      float64 // peak z-score
}

// Series is a story's bucketed activity histogram.
type Series struct {
	Origin time.Time
	Bucket time.Duration
	Counts []int
}

// At returns the bucket index for a timestamp (-1 if before the origin).
func (s *Series) At(t time.Time) int {
	if t.Before(s.Origin) {
		return -1
	}
	idx := int(t.Sub(s.Origin) / s.Bucket)
	if idx >= len(s.Counts) {
		return len(s.Counts) - 1
	}
	return idx
}

// BuildSeries buckets timestamps into the story's activity histogram.
func BuildSeries(times []time.Time, bucket time.Duration) *Series {
	if len(times) == 0 || bucket <= 0 {
		return &Series{Bucket: bucket}
	}
	min, max := times[0], times[0]
	for _, t := range times[1:] {
		if t.Before(min) {
			min = t
		}
		if t.After(max) {
			max = t
		}
	}
	origin := min.Truncate(bucket)
	n := int(max.Sub(origin)/bucket) + 1
	s := &Series{Origin: origin, Bucket: bucket, Counts: make([]int, n)}
	for _, t := range times {
		idx := int(t.Sub(origin) / bucket)
		if idx >= 0 && idx < n {
			s.Counts[idx]++
		}
	}
	return s
}

// Bursts detects activity bursts in the series: maximal runs of buckets
// whose count exceeds mean + threshold·stddev of the whole series.
// Stories with uniform activity yield no bursts; a degenerate series
// (all activity in one bucket of an otherwise empty span) yields one.
func Bursts(s *Series, cfg Config) []Burst {
	cfg = cfg.withDefaults()
	n := len(s.Counts)
	if n == 0 {
		return nil
	}
	var sum, sumSq float64
	for _, c := range s.Counts {
		sum += float64(c)
		sumSq += float64(c) * float64(c)
	}
	mean := sum / float64(n)
	variance := sumSq/float64(n) - mean*mean
	if variance < 1e-12 {
		return nil // perfectly uniform activity
	}
	std := math.Sqrt(variance)
	cut := mean + cfg.Threshold*std

	var bursts []Burst
	i := 0
	for i < n {
		if float64(s.Counts[i]) <= cut {
			i++
			continue
		}
		j := i
		snips := 0
		peak := 0.0
		for j < n && float64(s.Counts[j]) > cut {
			snips += s.Counts[j]
			if z := (float64(s.Counts[j]) - mean) / std; z > peak {
				peak = z
			}
			j++
		}
		bursts = append(bursts, Burst{
			Start:    s.Origin.Add(time.Duration(i) * s.Bucket),
			End:      s.Origin.Add(time.Duration(j) * s.Bucket),
			Snippets: snips,
			Score:    peak,
		})
		i = j
	}
	return bursts
}

// StoryBursts analyses one integrated story.
func StoryBursts(is *event.IntegratedStory, cfg Config) []Burst {
	cfg = cfg.withDefaults()
	if is.Len() < cfg.MinSnippets {
		return nil
	}
	times := make([]time.Time, 0, is.Len())
	for _, sn := range is.Snippets() {
		times = append(times, sn.Timestamp)
	}
	return Bursts(BuildSeries(times, cfg.Bucket), cfg)
}

// Trend is one trending story: its activity in the query window compared
// to its historical baseline.
type Trend struct {
	Story    *event.IntegratedStory
	Recent   int     // snippets inside the window
	Baseline float64 // mean snippets per window-width bucket before it
	Score    float64 // burstiness of the window vs the baseline
}

// Trending ranks integrated stories by activity inside [now−window, now]
// relative to each story's own prior rate. New stories (no history) score
// by raw recent volume. Stories with no recent activity are excluded.
func Trending(stories []*event.IntegratedStory, now time.Time, window time.Duration, cfg Config) []Trend {
	cfg = cfg.withDefaults()
	from := now.Add(-window)
	var out []Trend
	for _, is := range stories {
		if is.Len() < cfg.MinSnippets {
			continue
		}
		recent := 0
		var history []time.Time
		for _, sn := range is.Snippets() {
			switch {
			case sn.Timestamp.After(from) && !sn.Timestamp.After(now):
				recent++
			case !sn.Timestamp.After(from):
				history = append(history, sn.Timestamp)
			}
		}
		if recent == 0 {
			continue
		}
		tr := Trend{Story: is, Recent: recent}
		if len(history) == 0 {
			tr.Score = float64(recent) // brand new story: raw volume
		} else {
			span := from.Sub(history[0])
			buckets := float64(span) / float64(window)
			if buckets < 1 {
				buckets = 1
			}
			tr.Baseline = float64(len(history)) / buckets
			tr.Score = float64(recent) / (tr.Baseline + 1)
		}
		out = append(out, tr)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].Story.ID < out[j].Story.ID
	})
	return out
}
