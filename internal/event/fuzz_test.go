package event

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// FuzzCodecRoundTrip drives the snippet codec from both directions:
//
//  1. A snippet built from the fuzzed fields must survive
//     Decode(Encode(s)) with every field intact.
//  2. Decode over the raw fuzzed bytes must never panic, and any buffer
//     it accepts must re-encode to the identical bytes (the encoding is
//     canonical: one byte string per value).
func FuzzCodecRoundTrip(f *testing.F) {
	// Seeds mirror the codec_test fixtures: the MH17 running example and
	// a few degenerate shapes.
	fix := &Snippet{
		ID: 42, Source: "nyt",
		Timestamp: time.Date(2014, 7, 17, 16, 20, 0, 0, time.UTC),
		Entities:  []Entity{"MAL", "RUS", "UKR"},
		Terms:     []Term{{Token: "crash", Weight: 2.5}, {Token: "plane", Weight: 1}},
		Text:      "A Malaysia Airlines Boeing 777 crashed near Donetsk.",
		Document:  "http://nytimes.com/doc1.html",
	}
	f.Add(Encode(fix), uint64(42), "nyt", fix.Timestamp.UnixNano(), "MAL", "crash", 2.5, "text", "doc")
	f.Add([]byte{}, uint64(0), "", int64(0), "", "", 0.0, "", "")
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, uint64(1)<<63, "источник", int64(-1), "UKR", "pro-russia", math.Inf(1), "τ", "")

	f.Fuzz(func(t *testing.T, raw []byte, id uint64, src string, ns int64,
		entity, token string, weight float64, text, doc string) {

		// Direction 1: structured round trip.
		s := &Snippet{
			ID:        SnippetID(id),
			Source:    SourceID(src),
			Timestamp: time.Unix(0, ns).UTC(),
			Text:      text,
			Document:  doc,
		}
		if entity != "" {
			s.Entities = []Entity{Entity(entity), Entity(entity + "2")}
		}
		if token != "" {
			s.Terms = []Term{{Token: token, Weight: weight}}
		}
		enc := Encode(s)
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("decoding own encoding: %v", err)
		}
		if got.ID != s.ID || got.Source != s.Source || got.Text != s.Text || got.Document != s.Document {
			t.Fatalf("scalar fields corrupted: %+v != %+v", got, s)
		}
		if !got.Timestamp.Equal(s.Timestamp) {
			t.Fatalf("timestamp: %v != %v", got.Timestamp, s.Timestamp)
		}
		if len(got.Entities) != len(s.Entities) || len(got.Terms) != len(s.Terms) {
			t.Fatalf("slice lengths: %+v != %+v", got, s)
		}
		for i := range s.Entities {
			if got.Entities[i] != s.Entities[i] {
				t.Fatalf("entity %d: %q != %q", i, got.Entities[i], s.Entities[i])
			}
		}
		for i := range s.Terms {
			// Compare weights by bit pattern so NaN round trips count as
			// equal.
			if got.Terms[i].Token != s.Terms[i].Token ||
				math.Float64bits(got.Terms[i].Weight) != math.Float64bits(s.Terms[i].Weight) {
				t.Fatalf("term %d: %+v != %+v", i, got.Terms[i], s.Terms[i])
			}
		}
		if !bytes.Equal(Encode(got), enc) {
			t.Fatal("re-encoding decoded snippet diverges")
		}

		// Direction 2: arbitrary bytes. Decode must reject or accept,
		// never panic; acceptance implies canonical re-encoding.
		if s2, err := Decode(raw); err == nil {
			if !bytes.Equal(Encode(s2), raw) {
				t.Fatalf("accepted buffer is not canonical: % x", raw)
			}
		}
	})
}

// FuzzDecodeCorrupt flips bytes in a valid encoding: decoding must
// reject or accept without panicking, and truncations of a valid buffer
// must never be accepted (the codec requires full consumption, so any
// strict prefix is invalid).
func FuzzDecodeCorrupt(f *testing.F) {
	base := Encode(&Snippet{
		ID: 7, Source: "wsj",
		Timestamp: time.Date(2014, 7, 18, 0, 0, 0, 0, time.UTC),
		Entities:  []Entity{"GOOG", "YELP"},
		Terms:     []Term{{Token: "search", Weight: 1.5}},
		Text:      "Google battles Yelp over search results.",
	})
	f.Add(0, byte(0xff), len(base))
	f.Add(4, byte(0x01), 10)
	f.Fuzz(func(t *testing.T, pos int, mask byte, cut int) {
		buf := append([]byte(nil), base...)
		if cut < 0 {
			cut = 0
		}
		if cut > len(buf) {
			cut = len(buf)
		}
		buf = buf[:cut]
		mutated := pos >= 0 && pos < len(buf) && mask != 0
		if mutated {
			buf[pos] ^= mask
		}
		s, err := Decode(buf) // must not panic, whatever the damage
		if !mutated && cut < len(base) && err == nil {
			// A pure truncation leaves every length prefix intact, so some
			// field read must run out of bytes. (A *mutated* buffer may
			// legitimately decode — a shortened length prefix can make a
			// truncated buffer self-consistent.)
			t.Fatalf("strict prefix of %d/%d bytes decoded cleanly: %+v", cut, len(base), s)
		}
	})
}
