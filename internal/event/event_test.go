package event

import (
	"testing"
	"time"
)

func ts(day int) time.Time {
	return time.Date(2014, time.July, day, 0, 0, 0, 0, time.UTC)
}

func snip(id SnippetID, src SourceID, day int, ents []Entity, terms ...Term) *Snippet {
	s := &Snippet{ID: id, Source: src, Timestamp: ts(day), Entities: ents, Terms: terms}
	s.Normalize()
	return s
}

func TestSnippetValidate(t *testing.T) {
	valid := snip(1, "nyt", 17, []Entity{"UKR"}, Term{"crash", 1})
	if err := valid.Validate(); err != nil {
		t.Fatalf("valid snippet rejected: %v", err)
	}
	cases := []struct {
		name string
		s    Snippet
		want error
	}{
		{"no source", Snippet{Timestamp: ts(1), Entities: []Entity{"A"}}, ErrNoSource},
		{"no timestamp", Snippet{Source: "nyt", Entities: []Entity{"A"}}, ErrNoTimestamp},
		{"empty content", Snippet{Source: "nyt", Timestamp: ts(1)}, ErrEmpty},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.s.Validate(); err != c.want {
				t.Errorf("Validate() = %v, want %v", err, c.want)
			}
		})
	}
}

func TestSnippetNormalize(t *testing.T) {
	s := &Snippet{
		Source:    "nyt",
		Timestamp: ts(17),
		Entities:  []Entity{"UKR", "MAL", "UKR", "RUS", "MAL"},
		Terms: []Term{
			{"plane", 1.0}, {"crash", 2.0}, {"plane", 0.5},
		},
	}
	s.Normalize()
	wantEnts := []Entity{"MAL", "RUS", "UKR"}
	if len(s.Entities) != len(wantEnts) {
		t.Fatalf("entities = %v, want %v", s.Entities, wantEnts)
	}
	for i, e := range wantEnts {
		if s.Entities[i] != e {
			t.Errorf("entities[%d] = %q, want %q", i, s.Entities[i], e)
		}
	}
	if len(s.Terms) != 2 {
		t.Fatalf("terms = %v, want 2 merged terms", s.Terms)
	}
	if s.Terms[0].Token != "crash" || s.Terms[0].Weight != 2.0 {
		t.Errorf("terms[0] = %+v, want crash/2.0", s.Terms[0])
	}
	if s.Terms[1].Token != "plane" || s.Terms[1].Weight != 1.5 {
		t.Errorf("terms[1] = %+v, want plane/1.5", s.Terms[1])
	}
}

func TestSnippetNormalizeIdempotent(t *testing.T) {
	s := snip(1, "nyt", 17, []Entity{"B", "A", "B"}, Term{"x", 1}, Term{"a", 2})
	before := *s.Clone()
	s.Normalize()
	if len(s.Entities) != len(before.Entities) || len(s.Terms) != len(before.Terms) {
		t.Fatalf("second Normalize changed snippet: %+v vs %+v", s, before)
	}
}

func TestHasEntity(t *testing.T) {
	s := snip(1, "nyt", 17, []Entity{"MAL", "RUS", "UKR"})
	for _, e := range []Entity{"MAL", "RUS", "UKR"} {
		if !s.HasEntity(e) {
			t.Errorf("HasEntity(%q) = false, want true", e)
		}
	}
	for _, e := range []Entity{"", "A", "ZZZ", "NTH"} {
		if s.HasEntity(e) {
			t.Errorf("HasEntity(%q) = true, want false", e)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	s := snip(1, "nyt", 17, []Entity{"UKR"}, Term{"crash", 1})
	c := s.Clone()
	c.Entities[0] = "XXX"
	c.Terms[0].Weight = 99
	if s.Entities[0] != "UKR" || s.Terms[0].Weight != 1 {
		t.Fatal("Clone shares backing arrays with original")
	}
}

func TestByTimestampOrdering(t *testing.T) {
	a := snip(2, "nyt", 17, []Entity{"A"})
	b := snip(1, "nyt", 17, []Entity{"A"}) // same time, lower ID
	c := snip(3, "nyt", 16, []Entity{"A"})
	got := []*Snippet{a, b, c}
	ByTimestamp(got).Swap(0, 2)
	if got[0] != c {
		t.Fatal("Swap broken")
	}
	if !ByTimestamp([]*Snippet{c, a}).Less(0, 1) {
		t.Error("earlier timestamp should be Less")
	}
	if !ByTimestamp([]*Snippet{b, a}).Less(0, 1) {
		t.Error("same timestamp: lower ID should be Less")
	}
	if ByTimestamp([]*Snippet{a, b}).Less(0, 1) {
		t.Error("same timestamp: higher ID should not be Less")
	}
}

func TestStoryAddMaintainsOrderAndAggregates(t *testing.T) {
	st := NewStory(1, "nyt")
	st.Add(snip(3, "nyt", 20, []Entity{"UKR", "RUS"}, Term{"sanctions", 1}))
	st.Add(snip(1, "nyt", 17, []Entity{"UKR", "MAL"}, Term{"crash", 2}))
	st.Add(snip(2, "nyt", 18, []Entity{"UKR"}, Term{"crash", 1}, Term{"investigation", 1}))

	if st.Len() != 3 {
		t.Fatalf("Len = %d, want 3", st.Len())
	}
	for i := 1; i < st.Len(); i++ {
		if st.Snippets[i].Timestamp.Before(st.Snippets[i-1].Timestamp) {
			t.Fatal("snippets not chronological after out-of-order Add")
		}
	}
	ef, cen := st.EntityFreqMap(), st.CentroidMap()
	if ef["UKR"] != 3 || ef["MAL"] != 1 || ef["RUS"] != 1 {
		t.Errorf("EntityFreq = %v", ef)
	}
	if cen["crash"] != 3 || cen["sanctions"] != 1 {
		t.Errorf("Centroid = %v", cen)
	}
	if !st.Start.Equal(ts(17)) || !st.End.Equal(ts(20)) {
		t.Errorf("extent = %s..%s, want 17..20", st.Start, st.End)
	}
}

func TestStoryAddWrongSourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Add with wrong source did not panic")
		}
	}()
	st := NewStory(1, "nyt")
	st.Add(snip(1, "wsj", 17, []Entity{"A"}))
}

func TestStoryRemove(t *testing.T) {
	st := NewStory(1, "nyt")
	st.Add(snip(1, "nyt", 17, []Entity{"UKR", "MAL"}, Term{"crash", 2}))
	st.Add(snip(2, "nyt", 20, []Entity{"UKR"}, Term{"report", 1}))

	if !st.Remove(1) {
		t.Fatal("Remove(1) = false, want true")
	}
	if st.Remove(1) {
		t.Fatal("second Remove(1) = true, want false")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d, want 1", st.Len())
	}
	ef, cen := st.EntityFreqMap(), st.CentroidMap()
	if _, ok := ef["MAL"]; ok {
		t.Error("MAL frequency not cleaned up")
	}
	if ef["UKR"] != 1 {
		t.Errorf("UKR freq = %d, want 1", ef["UKR"])
	}
	if _, ok := cen["crash"]; ok {
		t.Error("crash term not cleaned up")
	}
	if !st.Start.Equal(ts(20)) || !st.End.Equal(ts(20)) {
		t.Errorf("extent after removal = %s..%s, want 20..20", st.Start, st.End)
	}
}

func TestStoryRemoveMissing(t *testing.T) {
	st := NewStory(1, "nyt")
	if st.Remove(42) {
		t.Fatal("Remove on empty story = true")
	}
}

func TestCentroidNormCaching(t *testing.T) {
	st := NewStory(1, "nyt")
	st.Add(snip(1, "nyt", 17, []Entity{"A"}, Term{"x", 3}, Term{"y", 4}))
	if got := st.CentroidNorm(); got != 5 {
		t.Fatalf("CentroidNorm = %g, want 5", got)
	}
	// Second call hits the cache.
	if got := st.CentroidNorm(); got != 5 {
		t.Fatalf("cached CentroidNorm = %g, want 5", got)
	}
	st.Add(snip(2, "nyt", 18, []Entity{"A"}, Term{"x", 3}))
	if got := st.CentroidNorm(); got == 5 {
		t.Fatal("CentroidNorm not invalidated by Add")
	}
}

func TestWindowSnippets(t *testing.T) {
	st := NewStory(1, "nyt")
	for day := 10; day <= 20; day++ {
		st.Add(snip(SnippetID(day), "nyt", day, []Entity{"A"}))
	}
	got := st.WindowSnippets(ts(13), ts(16))
	if len(got) != 4 {
		t.Fatalf("window [13,16] returned %d snippets, want 4", len(got))
	}
	if got[0].ID != 13 || got[3].ID != 16 {
		t.Errorf("window bounds wrong: %v..%v", got[0].ID, got[3].ID)
	}
	if got := st.WindowSnippets(ts(25), ts(30)); got != nil {
		t.Errorf("empty window returned %d snippets", len(got))
	}
	if got := st.WindowSnippets(ts(16), ts(13)); got != nil {
		t.Errorf("inverted window returned %d snippets", len(got))
	}
}

func TestWindowedCentroid(t *testing.T) {
	st := NewStory(1, "nyt")
	st.Add(snip(1, "nyt", 10, []Entity{"A"}, Term{"old", 5}))
	st.Add(snip(2, "nyt", 20, []Entity{"B"}, Term{"new", 2}))
	cen, ents := st.WindowedCentroid(ts(15), ts(25))
	if len(cen) != 1 || cen["new"] != 2 {
		t.Errorf("windowed centroid = %v", cen)
	}
	if len(ents) != 1 || ents["B"] != 1 {
		t.Errorf("windowed entities = %v", ents)
	}
}

func TestTopEntitiesAndTerms(t *testing.T) {
	st := NewStory(1, "nyt")
	st.Add(snip(1, "nyt", 17, []Entity{"UKR", "MAL"}, Term{"crash", 3}, Term{"plane", 3}))
	st.Add(snip(2, "nyt", 18, []Entity{"UKR"}, Term{"shot", 2}))

	ents := st.TopEntities(0)
	if len(ents) != 2 || ents[0].Entity != "UKR" || ents[0].Count != 2 {
		t.Errorf("TopEntities = %v", ents)
	}
	if top1 := st.TopEntities(1); len(top1) != 1 {
		t.Errorf("TopEntities(1) len = %d", len(top1))
	}
	terms := st.TopTerms(0)
	// crash and plane tie at 3; alphabetical tiebreak puts crash first.
	if terms[0].Token != "crash" || terms[1].Token != "plane" || terms[2].Token != "shot" {
		t.Errorf("TopTerms order = %v", terms)
	}
}

// TestStoryGenAdvances pins the mutation-counter contract: a remove+add
// pair that leaves the length unchanged must still advance Gen, since
// content-keyed caches (the identification window aggregates) rely on it.
func TestStoryGenAdvances(t *testing.T) {
	st := NewStory(1, "nyt")
	st.Add(snip(1, "nyt", 17, []Entity{"A"}, Term{"x", 1}))
	st.Add(snip(2, "nyt", 18, []Entity{"B"}, Term{"y", 1}))
	g := st.Gen()
	st.Remove(1)
	st.Add(snip(3, "nyt", 17, []Entity{"C"}, Term{"z", 1}))
	if st.Len() != 2 {
		t.Fatalf("Len = %d, want 2", st.Len())
	}
	if st.Gen() == g {
		t.Fatal("Gen unchanged across same-length remove+add")
	}
	if st.Snapshot().Gen() != st.Gen() {
		t.Fatal("Snapshot does not carry Gen")
	}
}

func TestStoryOverlaps(t *testing.T) {
	a := NewStory(1, "nyt")
	a.Add(snip(1, "nyt", 10, []Entity{"A"}))
	a.Add(snip(2, "nyt", 15, []Entity{"A"}))
	b := NewStory(2, "wsj")
	b.Add(snip(3, "wsj", 14, []Entity{"A"}))
	b.Add(snip(4, "wsj", 20, []Entity{"A"}))
	c := NewStory(3, "wsj")
	c.Add(snip(5, "wsj", 25, []Entity{"A"}))

	if !a.Overlaps(b, 0) {
		t.Error("overlapping stories reported disjoint")
	}
	if a.Overlaps(c, 0) {
		t.Error("disjoint stories reported overlapping")
	}
	// With enough slack the gap (15 -> 25) closes.
	if !a.Overlaps(c, 10*24*time.Hour) {
		t.Error("slack did not close the gap")
	}
	empty := NewStory(4, "nyt")
	if a.Overlaps(empty, time.Hour) || empty.Overlaps(a, time.Hour) {
		t.Error("empty story must not overlap anything")
	}
}

func TestStringRenderings(t *testing.T) {
	s := snip(7, "nyt", 17, []Entity{"UKR"})
	if got := s.String(); got == "" {
		t.Error("Snippet.String empty")
	}
	st := NewStory(3, "nyt")
	st.Add(s)
	if got := st.String(); got == "" {
		t.Error("Story.String empty")
	}
}
