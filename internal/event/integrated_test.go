package event

import (
	"testing"
)

func buildMembers() (*Story, *Story) {
	a := NewStory(1, "nyt")
	a.Add(snip(1, "nyt", 17, []Entity{"UKR", "MAL"}, Term{"crash", 2}))
	a.Add(snip(2, "nyt", 18, []Entity{"UKR"}, Term{"investigation", 1}))
	b := NewStory(2, "wsj")
	b.Add(snip(3, "wsj", 17, []Entity{"UKR"}, Term{"crash", 1}, Term{"plane", 1}))
	return a, b
}

func TestIntegratedStoryBasics(t *testing.T) {
	a, b := buildMembers()
	is := NewIntegratedStory(10, []*Story{b, a}) // deliberately unsorted

	if len(is.Members) != 2 || is.Members[0].Source != "nyt" {
		t.Fatalf("members not sorted by source: %v", is.Members)
	}
	srcs := is.Sources()
	if len(srcs) != 2 || srcs[0] != "nyt" || srcs[1] != "wsj" {
		t.Errorf("Sources = %v", srcs)
	}
	if is.Len() != 3 {
		t.Errorf("Len = %d, want 3", is.Len())
	}
	sn := is.Snippets()
	if len(sn) != 3 {
		t.Fatalf("Snippets len = %d", len(sn))
	}
	for i := 1; i < len(sn); i++ {
		if sn[i].Timestamp.Before(sn[i-1].Timestamp) {
			t.Fatal("integrated snippets not chronological")
		}
	}
	start, end := is.Extent()
	if !start.Equal(ts(17)) || !end.Equal(ts(18)) {
		t.Errorf("Extent = %s..%s", start, end)
	}
}

func TestIntegratedAggregates(t *testing.T) {
	a, b := buildMembers()
	is := NewIntegratedStory(10, []*Story{a, b})
	ef := is.EntityFreq()
	if ef["UKR"] != 3 || ef["MAL"] != 1 {
		t.Errorf("EntityFreq = %v", ef)
	}
	cen := is.Centroid()
	if cen["crash"] != 3 || cen["plane"] != 1 {
		t.Errorf("Centroid = %v", cen)
	}
}

func TestIntegratedEmptyAndSingleton(t *testing.T) {
	a := NewStory(1, "nyt")
	a.Add(snip(1, "nyt", 17, []Entity{"A"}))
	is := NewIntegratedStory(1, []*Story{a})
	if got := is.Sources(); len(got) != 1 {
		t.Errorf("singleton Sources = %v", got)
	}
	empty := NewIntegratedStory(2, nil)
	if empty.Len() != 0 || len(empty.Snippets()) != 0 {
		t.Error("empty integrated story should have no snippets")
	}
	start, end := empty.Extent()
	if !start.IsZero() || !end.IsZero() {
		t.Error("empty extent should be zero")
	}
	if empty.String() == "" || is.String() == "" {
		t.Error("String renderings empty")
	}
}

func TestSnippetRoleString(t *testing.T) {
	cases := map[SnippetRole]string{
		RoleUnknown:    "unknown",
		RoleAligning:   "aligning",
		RoleEnriching:  "enriching",
		SnippetRole(9): "unknown",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", r, got, want)
		}
	}
}
