package event

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/vocab"
)

// Story is a per-source story: a chronologically ordered set of snippets
// from a single data source that describe the same evolving real-world
// story (paper §2.2). A Story maintains incremental aggregates — entity
// frequencies and a description-term centroid — so that matching a new
// snippet against the story is O(|snippet|) rather than O(|story|).
//
// The aggregates are flat sorted sparse vectors over the process-wide
// vocab symbol tables (see internal/vocab): the similarity kernels
// merge-walk them with zero allocation per comparison. The string-keyed
// map forms survive only at API edges, via EntityFreqMap/CentroidMap.
type Story struct {
	ID     StoryID
	Source SourceID

	// Snippets in chronological order (ByTimestamp order).
	Snippets []*Snippet

	// EntityFreq counts, for every entity (by vocab symbol, ascending),
	// in how many snippets of the story it appears. This powers the
	// "Story Information" panels of the demo UI (Figures 4–6) and
	// entity-based similarity.
	EntityFreq []vocab.IDCount

	// Centroid is the running sum of the snippets' term vectors, sorted
	// by vocab symbol. Cosine similarity against the centroid
	// approximates average linkage.
	Centroid []vocab.IDWeight

	// centroidNorm caches the Euclidean norm of Centroid; negative means
	// stale.
	centroidNorm float64

	// gen counts mutations (Add/Remove). Caches keyed on story content —
	// the identification window-aggregate cache in particular — key on
	// Gen(), which unlike Len() cannot alias a same-length remove+add
	// (refinement Move) with an unchanged story.
	gen uint64

	Start, End time.Time
}

// NewStory creates an empty story for the given source.
func NewStory(id StoryID, src SourceID) *Story {
	return &Story{
		ID:           id,
		Source:       src,
		centroidNorm: -1,
	}
}

// Len returns the number of snippets in the story.
func (st *Story) Len() int { return len(st.Snippets) }

// Gen returns the story's mutation counter: it advances on every Add and
// Remove, so equal Gen values imply unchanged content (within one
// process run).
func (st *Story) Gen() uint64 { return st.gen }

// BumpGen advances the mutation counter without a content change.
// Reactivating an archived story calls it so every downstream consumer
// keyed on (story, gen) — the query index's liveness table, the result
// cache — observes the retire→reactivate transition as a delta even when
// the content round-tripped bit-identically.
func (st *Story) BumpGen() { st.gen++ }

// Add inserts a snippet into the story, keeping chronological order and
// updating the aggregates. Add panics if the snippet's source differs from
// the story's source: per-source stories never mix sources (that is the job
// of alignment).
func (st *Story) Add(s *Snippet) {
	if s.Source != st.Source {
		panic(fmt.Sprintf("event: snippet source %q added to story of source %q", s.Source, st.Source))
	}
	s.EnsureInterned()
	// Insert keeping chronological order; the common case is appending at
	// the end, so probe that first.
	n := len(st.Snippets)
	if n == 0 || !s.Timestamp.Before(st.Snippets[n-1].Timestamp) {
		st.Snippets = append(st.Snippets, s)
	} else {
		i := sort.Search(n, func(i int) bool {
			ti := st.Snippets[i].Timestamp
			return ti.After(s.Timestamp) || (ti.Equal(s.Timestamp) && st.Snippets[i].ID > s.ID)
		})
		st.Snippets = append(st.Snippets, nil)
		copy(st.Snippets[i+1:], st.Snippets[i:])
		st.Snippets[i] = s
	}
	st.EntityFreq = vocab.IncCounts(st.EntityFreq, s.EntityIDs)
	st.Centroid = vocab.AddWeights(st.Centroid, s.TermIDs)
	st.centroidNorm = -1
	st.gen++
	if st.Start.IsZero() || s.Timestamp.Before(st.Start) {
		st.Start = s.Timestamp
	}
	if st.End.IsZero() || s.Timestamp.After(st.End) {
		st.End = s.Timestamp
	}
}

// Remove deletes the snippet with the given ID from the story and updates
// the aggregates. It reports whether the snippet was present.
func (st *Story) Remove(id SnippetID) bool {
	idx := -1
	for i, s := range st.Snippets {
		if s.ID == id {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	s := st.Snippets[idx]
	st.Snippets = append(st.Snippets[:idx], st.Snippets[idx+1:]...)
	st.EntityFreq = vocab.DecCounts(st.EntityFreq, s.EntityIDs)
	st.Centroid = vocab.SubWeights(st.Centroid, s.TermIDs)
	st.centroidNorm = -1
	st.gen++
	st.recomputeExtent()
	return true
}

func (st *Story) recomputeExtent() {
	st.Start, st.End = time.Time{}, time.Time{}
	for _, s := range st.Snippets {
		if st.Start.IsZero() || s.Timestamp.Before(st.Start) {
			st.Start = s.Timestamp
		}
		if st.End.IsZero() || s.Timestamp.After(st.End) {
			st.End = s.Timestamp
		}
	}
}

// CentroidNorm returns the Euclidean norm of the centroid vector, cached
// across calls until the story changes.
func (st *Story) CentroidNorm() float64 {
	if st.centroidNorm >= 0 {
		return st.centroidNorm
	}
	var sum float64
	for _, e := range st.Centroid {
		sum += e.W * e.W
	}
	st.centroidNorm = math.Sqrt(sum)
	return st.centroidNorm
}

// EntityFreqMap returns the entity frequencies keyed by entity string —
// the API-edge form used by display, export, and the knowledge-base
// context lookups. Allocates; do not call on a similarity hot path.
func (st *Story) EntityFreqMap() map[Entity]int {
	out := make(map[Entity]int, len(st.EntityFreq))
	for _, ec := range st.EntityFreq {
		out[Entity(vocab.Entities.String(ec.ID))] = int(ec.N)
	}
	return out
}

// CentroidMap returns the term centroid keyed by token string — the
// API-edge form. Allocates; do not call on a similarity hot path.
func (st *Story) CentroidMap() map[string]float64 {
	out := make(map[string]float64, len(st.Centroid))
	for _, tw := range st.Centroid {
		out[vocab.Terms.String(tw.ID)] = tw.W
	}
	return out
}

// WindowSnippets returns the story's snippets whose timestamps fall in
// [from, to] (inclusive). The story's chronological order makes this a
// binary search plus a copy of the matching range.
func (st *Story) WindowSnippets(from, to time.Time) []*Snippet {
	lo := sort.Search(len(st.Snippets), func(i int) bool {
		return !st.Snippets[i].Timestamp.Before(from)
	})
	hi := sort.Search(len(st.Snippets), func(i int) bool {
		return st.Snippets[i].Timestamp.After(to)
	})
	if lo >= hi {
		return nil
	}
	return st.Snippets[lo:hi]
}

// WindowedCentroidIDs computes the flat term centroid and entity
// frequencies over only the snippets inside [from, to]. Temporal story
// identification uses this to compare a new snippet against the story
// "as it currently is" rather than its entire history (paper §2.2,
// Figure 2b).
func (st *Story) WindowedCentroidIDs(from, to time.Time) (centroid []vocab.IDWeight, entities []vocab.IDCount) {
	return st.AppendWindowedCentroidIDs(from, to, nil, nil)
}

// AppendWindowedCentroidIDs is WindowedCentroidIDs accumulating into the
// given buffers (emptied, capacity reused). The temporal identifier's
// aggregate cache rebuilds windows on every bucket advance, so reusing
// the previous window's backing arrays keeps the steady-state rebuild
// allocation-free.
func (st *Story) AppendWindowedCentroidIDs(from, to time.Time, cen []vocab.IDWeight, ents []vocab.IDCount) ([]vocab.IDWeight, []vocab.IDCount) {
	for _, s := range st.WindowSnippets(from, to) {
		cen = vocab.AddWeights(cen, s.TermIDs)
		ents = vocab.IncCounts(ents, s.EntityIDs)
	}
	return cen, ents
}

// WindowedCentroid is WindowedCentroidIDs in the string-keyed API-edge
// form.
func (st *Story) WindowedCentroid(from, to time.Time) (centroid map[string]float64, entities map[Entity]int) {
	cen, ents := st.WindowedCentroidIDs(from, to)
	centroid = make(map[string]float64, len(cen))
	for _, tw := range cen {
		centroid[vocab.Terms.String(tw.ID)] = tw.W
	}
	entities = make(map[Entity]int, len(ents))
	for _, ec := range ents {
		entities[Entity(vocab.Entities.String(ec.ID))] = int(ec.N)
	}
	return centroid, entities
}

// Snapshot returns a copy of the story that is safe to read while the
// original keeps changing: the snippet list and aggregate vectors are
// copied, the snippet pointers are shared (snippets are immutable once
// ingested). Alignment results are built from snapshots so that readers
// of a published result never race with ongoing ingestion.
func (st *Story) Snapshot() *Story {
	return &Story{
		ID:           st.ID,
		Source:       st.Source,
		Snippets:     append([]*Snippet(nil), st.Snippets...),
		EntityFreq:   append([]vocab.IDCount(nil), st.EntityFreq...),
		Centroid:     append([]vocab.IDWeight(nil), st.Centroid...),
		centroidNorm: st.centroidNorm,
		gen:          st.gen,
		Start:        st.Start,
		End:          st.End,
	}
}

// RestoreStory rebuilds a story from archived state: the snippet list
// (already chronological), the aggregate vectors, extent, and mutation
// counter exactly as they were captured by Snapshot at archive time. The
// aggregates are adopted verbatim rather than recomputed so the restored
// story is bit-identical to the archived one — float summation order
// would otherwise differ from the incremental Add sequence that built the
// original. The retirement subsystem uses this to reactivate a cold story
// with its original identity and a caller-advanced Gen.
func RestoreStory(id StoryID, src SourceID, snippets []*Snippet,
	ents []vocab.IDCount, centroid []vocab.IDWeight,
	start, end time.Time, gen uint64) *Story {
	return &Story{
		ID:           id,
		Source:       src,
		Snippets:     snippets,
		EntityFreq:   ents,
		Centroid:     centroid,
		centroidNorm: -1,
		gen:          gen,
		Start:        start,
		End:          end,
	}
}

// TopEntities returns up to k entities sorted by descending frequency
// (ties broken alphabetically), as displayed in the demo's story panels.
func (st *Story) TopEntities(k int) []EntityCount {
	out := make([]EntityCount, 0, len(st.EntityFreq))
	for _, ec := range st.EntityFreq {
		out = append(out, EntityCount{Entity: Entity(vocab.Entities.String(ec.ID)), Count: int(ec.N)})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Entity < out[j].Entity
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// TopTerms returns up to k description terms sorted by descending centroid
// weight (ties broken alphabetically).
func (st *Story) TopTerms(k int) []TermWeight {
	out := make([]TermWeight, 0, len(st.Centroid))
	for _, tw := range st.Centroid {
		out = append(out, TermWeight{Token: vocab.Terms.String(tw.ID), Weight: tw.W})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Token < out[j].Token
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

// EntityCount pairs an entity with its snippet frequency within a story.
type EntityCount struct {
	Entity Entity
	Count  int
}

// TermWeight pairs a description term with its aggregate weight within a
// story.
type TermWeight struct {
	Token  string
	Weight float64
}

// Overlaps reports whether the temporal extents of two stories overlap when
// each is widened by slack on both sides. Story alignment uses this as its
// first, cheapest filter (paper §2.3: "it is highly unlikely that two
// stories are similar if c1 ends at ti and c2 starts at tj with ti ≪ tj").
func (st *Story) Overlaps(other *Story, slack time.Duration) bool {
	if st.Len() == 0 || other.Len() == 0 {
		return false
	}
	return !st.Start.Add(-slack).After(other.End) && !other.Start.Add(-slack).After(st.End)
}

// String returns a short human-readable rendering.
func (st *Story) String() string {
	return fmt.Sprintf("story %d [%s] %d snippets %s..%s", st.ID, st.Source,
		st.Len(), st.Start.Format("2006-01-02"), st.End.Format("2006-01-02"))
}
