package event

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/vocab"
)

// SnippetRole classifies how a snippet contributes to an integrated story
// (paper §2.3): aligning snippets have temporally and semantically close
// counterparts in other sources and drive the alignment decision; enriching
// snippets add source-exclusive information such as special reports.
type SnippetRole uint8

const (
	// RoleUnknown means the role has not been computed.
	RoleUnknown SnippetRole = iota
	// RoleAligning marks snippets with cross-source counterparts.
	RoleAligning
	// RoleEnriching marks source-exclusive snippets.
	RoleEnriching
)

// String implements fmt.Stringer.
func (r SnippetRole) String() string {
	switch r {
	case RoleAligning:
		return "aligning"
	case RoleEnriching:
		return "enriching"
	default:
		return "unknown"
	}
}

// IntegratedStory is the result of aligning per-source stories across data
// sources (paper Figure 1c): a set of member stories, one or more per
// source, that describe the same real-world story. A story that could not
// be aligned with any other source still becomes a (singleton) integrated
// story, so the integrated result set always covers every per-source story.
type IntegratedStory struct {
	ID IntegratedID

	// Members are the per-source stories merged into this integrated
	// story, sorted by (source, story ID) for determinism.
	Members []*Story

	// Roles records the computed role of each member snippet.
	Roles map[SnippetID]SnippetRole
}

// NewIntegratedStory creates an integrated story over the given members.
func NewIntegratedStory(id IntegratedID, members []*Story) *IntegratedStory {
	ms := append([]*Story(nil), members...)
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].Source != ms[j].Source {
			return ms[i].Source < ms[j].Source
		}
		return ms[i].ID < ms[j].ID
	})
	return &IntegratedStory{ID: id, Members: ms, Roles: make(map[SnippetID]SnippetRole)}
}

// Sources returns the distinct sources contributing to the integrated
// story, sorted.
func (is *IntegratedStory) Sources() []SourceID {
	seen := make(map[SourceID]bool, len(is.Members))
	var out []SourceID
	for _, m := range is.Members {
		if !seen[m.Source] {
			seen[m.Source] = true
			out = append(out, m.Source)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Snippets returns all member snippets in chronological order.
func (is *IntegratedStory) Snippets() []*Snippet {
	var out []*Snippet
	for _, m := range is.Members {
		out = append(out, m.Snippets...)
	}
	sort.Sort(ByTimestamp(out))
	return out
}

// Extent returns the overall [start, end] temporal extent.
func (is *IntegratedStory) Extent() (start, end time.Time) {
	for _, m := range is.Members {
		if m.Len() == 0 {
			continue
		}
		if start.IsZero() || m.Start.Before(start) {
			start = m.Start
		}
		if end.IsZero() || m.End.After(end) {
			end = m.End
		}
	}
	return start, end
}

// EntityFreq merges the member stories' entity frequencies, as shown in the
// demo's "Story Information" panel for aligned stories (Figure 4).
func (is *IntegratedStory) EntityFreq() map[Entity]int {
	out := make(map[Entity]int)
	for _, m := range is.Members {
		for _, ec := range m.EntityFreq {
			out[Entity(vocab.Entities.String(ec.ID))] += int(ec.N)
		}
	}
	return out
}

// Centroid merges the member stories' term centroids.
func (is *IntegratedStory) Centroid() map[string]float64 {
	out := make(map[string]float64)
	for _, m := range is.Members {
		for _, tw := range m.Centroid {
			out[vocab.Terms.String(tw.ID)] += tw.W
		}
	}
	return out
}

// Len returns the total number of snippets across all members.
func (is *IntegratedStory) Len() int {
	n := 0
	for _, m := range is.Members {
		n += m.Len()
	}
	return n
}

// String returns a short human-readable rendering.
func (is *IntegratedStory) String() string {
	start, end := is.Extent()
	return fmt.Sprintf("integrated %d: %d member stories, %d snippets, %d sources, %s..%s",
		is.ID, len(is.Members), is.Len(), len(is.Sources()),
		start.Format("2006-01-02"), end.Format("2006-01-02"))
}
