// Package event defines the core data model of StoryPivot: information
// snippets, stories, and data sources.
//
// A snippet is the elemental unit of information (paper §2.1): a piece of
// text extracted from a document, annotated with the entities it mentions,
// a weighted description-term vector, the data source it came from, and the
// timestamp of the real-world event it describes. Stories are sets of
// snippets from one source that describe the same evolving real-world story;
// integrated stories combine per-source stories across sources.
package event

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/vocab"
)

// SourceID identifies a data source (e.g. a newspaper, a blog).
type SourceID string

// SnippetID uniquely identifies a snippet across all sources.
type SnippetID uint64

// StoryID identifies a per-source story. StoryIDs are unique within the
// system, not just within a source.
type StoryID uint64

// IntegratedID identifies a cross-source integrated story produced by
// story alignment.
type IntegratedID uint64

// Entity is a canonical entity identifier, such as "UKR" or
// "malaysia_airlines". Entities are produced by the extraction pipeline and
// compared by exact equality.
type Entity string

// Term is a single stemmed description term with a weight. Weights are
// TF-IDF style scores assigned at extraction time.
type Term struct {
	Token  string
	Weight float64
}

// Snippet is an information snippet: the elemental unit processed by story
// identification and alignment.
type Snippet struct {
	ID        SnippetID
	Source    SourceID
	Timestamp time.Time
	// Entities mentioned by the snippet, deduplicated and sorted.
	Entities []Entity
	// Terms is the weighted description-term vector, sorted by token.
	Terms []Term
	// Text is the original excerpt the snippet was extracted from. It is
	// retained for display only; algorithms never read it.
	Text string
	// Document is the URL or identifier of the originating document.
	Document string

	// TermIDs is the interned description vector: Terms mapped through
	// the process-wide vocab table, sorted by symbol ID (not by token).
	// The similarity kernels read only this form; Terms is the API-edge
	// string form. Built by Normalize/EnsureInterned.
	TermIDs []vocab.IDWeight
	// EntityIDs mirrors Entities through the entity vocab table, sorted
	// by symbol ID.
	EntityIDs []uint32
	// TermNorm caches the Euclidean norm of TermIDs, so the snippet side
	// of every cosine is free at comparison time.
	TermNorm float64

	interned bool
}

// Validation errors returned by Snippet.Validate.
var (
	ErrNoSource    = errors.New("event: snippet has no source")
	ErrNoTimestamp = errors.New("event: snippet has zero timestamp")
	ErrEmpty       = errors.New("event: snippet has neither entities nor terms")
)

// Validate reports whether the snippet carries the minimum information the
// pipeline needs: a source, a timestamp, and at least one entity or term.
func (s *Snippet) Validate() error {
	if s.Source == "" {
		return ErrNoSource
	}
	if s.Timestamp.IsZero() {
		return ErrNoTimestamp
	}
	if len(s.Entities) == 0 && len(s.Terms) == 0 {
		return ErrEmpty
	}
	return nil
}

// Normalize sorts and deduplicates the entity list and sorts the term
// vector by token, merging duplicate tokens by summing weights. All pipeline
// stages assume normalized snippets.
func (s *Snippet) Normalize() {
	if len(s.Entities) > 1 {
		sort.Slice(s.Entities, func(i, j int) bool { return s.Entities[i] < s.Entities[j] })
		out := s.Entities[:1]
		for _, e := range s.Entities[1:] {
			if e != out[len(out)-1] {
				out = append(out, e)
			}
		}
		s.Entities = out
	}
	if len(s.Terms) > 1 {
		sort.Slice(s.Terms, func(i, j int) bool { return s.Terms[i].Token < s.Terms[j].Token })
		out := s.Terms[:1]
		for _, t := range s.Terms[1:] {
			if t.Token == out[len(out)-1].Token {
				out[len(out)-1].Weight += t.Weight
			} else {
				out = append(out, t)
			}
		}
		s.Terms = out
	}
	s.Intern()
}

// Intern (re)builds the snippet's interned ID vectors (TermIDs,
// EntityIDs, TermNorm) from the string forms. It tolerates unnormalized
// input: duplicate tokens are merged by summing weights, duplicate
// entities deduplicated. Intern never modifies Entities or Terms.
func (s *Snippet) Intern() {
	s.EntityIDs = s.EntityIDs[:0]
	for _, e := range s.Entities {
		s.EntityIDs = append(s.EntityIDs, vocab.Entities.ID(string(e)))
	}
	if len(s.EntityIDs) > 1 {
		sort.Slice(s.EntityIDs, func(i, j int) bool { return s.EntityIDs[i] < s.EntityIDs[j] })
		out := s.EntityIDs[:1]
		for _, id := range s.EntityIDs[1:] {
			if id != out[len(out)-1] {
				out = append(out, id)
			}
		}
		s.EntityIDs = out
	}
	s.TermIDs = s.TermIDs[:0]
	for _, t := range s.Terms {
		s.TermIDs = append(s.TermIDs, vocab.IDWeight{ID: vocab.Terms.ID(t.Token), W: t.Weight})
	}
	if len(s.TermIDs) > 1 {
		sort.Slice(s.TermIDs, func(i, j int) bool { return s.TermIDs[i].ID < s.TermIDs[j].ID })
		out := s.TermIDs[:1]
		for _, t := range s.TermIDs[1:] {
			if t.ID == out[len(out)-1].ID {
				out[len(out)-1].W += t.W
			} else {
				out = append(out, t)
			}
		}
		s.TermIDs = out
	}
	s.TermNorm = vocab.WeightNorm(s.TermIDs)
	s.interned = true
}

// EnsureInterned interns the snippet if it has not been yet. Every
// pipeline entry point (Normalize, codec decode, Story.Add,
// Identifier.Process) establishes the interned form, so downstream
// read paths see this as a pure flag check.
func (s *Snippet) EnsureInterned() {
	if !s.interned {
		s.Intern()
	}
}

// HasEntity reports whether the (normalized) snippet mentions e.
func (s *Snippet) HasEntity(e Entity) bool {
	i := sort.Search(len(s.Entities), func(i int) bool { return s.Entities[i] >= e })
	return i < len(s.Entities) && s.Entities[i] == e
}

// Clone returns a deep copy of the snippet.
func (s *Snippet) Clone() *Snippet {
	c := *s
	c.Entities = append([]Entity(nil), s.Entities...)
	c.Terms = append([]Term(nil), s.Terms...)
	c.EntityIDs = append([]uint32(nil), s.EntityIDs...)
	c.TermIDs = append([]vocab.IDWeight(nil), s.TermIDs...)
	return &c
}

// String returns a short human-readable rendering used in logs and the demo
// UI.
func (s *Snippet) String() string {
	ents := make([]string, len(s.Entities))
	for i, e := range s.Entities {
		ents[i] = string(e)
	}
	return fmt.Sprintf("snippet %d [%s @ %s] {%s}", s.ID, s.Source,
		s.Timestamp.Format("2006-01-02"), strings.Join(ents, ","))
}

// ByTimestamp sorts snippets chronologically, breaking ties by ID so the
// order is deterministic.
type ByTimestamp []*Snippet

func (b ByTimestamp) Len() int      { return len(b) }
func (b ByTimestamp) Swap(i, j int) { b[i], b[j] = b[j], b[i] }
func (b ByTimestamp) Less(i, j int) bool {
	if !b[i].Timestamp.Equal(b[j].Timestamp) {
		return b[i].Timestamp.Before(b[j].Timestamp)
	}
	return b[i].ID < b[j].ID
}
