package event

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// Binary snippet codec used by the event store. The format is a compact,
// deterministic, length-prefixed encoding:
//
//	u64 ID | str Source | i64 unixNano | u32 #entities | str... |
//	u32 #terms | (str token, f64 weight)... | str Text | str Document
//
// where str is u32 length + bytes. All integers are little-endian. The
// format is versioned by the storage layer's record header, not here.

// ErrCorrupt is returned when decoding encounters a malformed buffer.
var ErrCorrupt = errors.New("event: corrupt snippet encoding")

// maxStringLen bounds decoded string/slice lengths to protect against
// corrupted length prefixes causing huge allocations.
const maxStringLen = 1 << 26 // 64 MiB

// AppendEncode appends the binary encoding of s to buf and returns the
// extended buffer.
func AppendEncode(buf []byte, s *Snippet) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.ID))
	buf = appendString(buf, string(s.Source))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(s.Timestamp.UnixNano()))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Entities)))
	for _, e := range s.Entities {
		buf = appendString(buf, string(e))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s.Terms)))
	for _, t := range s.Terms {
		buf = appendString(buf, t.Token)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(t.Weight))
	}
	buf = appendString(buf, s.Text)
	buf = appendString(buf, s.Document)
	return buf
}

// Encode returns the binary encoding of s.
func Encode(s *Snippet) []byte {
	return AppendEncode(nil, s)
}

// Decode parses a snippet from buf. The entire buffer must be consumed.
func Decode(buf []byte) (*Snippet, error) {
	s, rest, err := decode(buf)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(rest))
	}
	return s, nil
}

func decode(buf []byte) (*Snippet, []byte, error) {
	s := &Snippet{}
	id, buf, err := readU64(buf)
	if err != nil {
		return nil, nil, err
	}
	s.ID = SnippetID(id)
	src, buf, err := readString(buf)
	if err != nil {
		return nil, nil, err
	}
	s.Source = SourceID(src)
	ns, buf, err := readU64(buf)
	if err != nil {
		return nil, nil, err
	}
	s.Timestamp = time.Unix(0, int64(ns)).UTC()
	ne, buf, err := readU32(buf)
	if err != nil {
		return nil, nil, err
	}
	// Each entity occupies at least its 4-byte length prefix, so a count
	// the remaining buffer cannot hold is corrupt. Checking before the
	// make keeps a damaged prefix from forcing a giant allocation.
	if ne > maxStringLen || int64(ne)*4 > int64(len(buf)) {
		return nil, nil, ErrCorrupt
	}
	if ne > 0 {
		s.Entities = make([]Entity, ne)
		for i := range s.Entities {
			var e string
			e, buf, err = readString(buf)
			if err != nil {
				return nil, nil, err
			}
			s.Entities[i] = Entity(e)
		}
	}
	nt, buf, err := readU32(buf)
	if err != nil {
		return nil, nil, err
	}
	// A term is at least a 4-byte length prefix plus an 8-byte weight.
	if nt > maxStringLen || int64(nt)*12 > int64(len(buf)) {
		return nil, nil, ErrCorrupt
	}
	if nt > 0 {
		s.Terms = make([]Term, nt)
		for i := range s.Terms {
			var tok string
			tok, buf, err = readString(buf)
			if err != nil {
				return nil, nil, err
			}
			var w uint64
			w, buf, err = readU64(buf)
			if err != nil {
				return nil, nil, err
			}
			s.Terms[i] = Term{Token: tok, Weight: math.Float64frombits(w)}
		}
	}
	s.Text, buf, err = readString(buf)
	if err != nil {
		return nil, nil, err
	}
	s.Document, buf, err = readString(buf)
	if err != nil {
		return nil, nil, err
	}
	// Re-establish the interned ID vectors: symbols are process-local, so
	// they are never part of the wire format.
	s.Intern()
	return s, buf, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(s)))
	return append(buf, s...)
}

func readU32(buf []byte) (uint32, []byte, error) {
	if len(buf) < 4 {
		return 0, nil, ErrCorrupt
	}
	return binary.LittleEndian.Uint32(buf), buf[4:], nil
}

func readU64(buf []byte) (uint64, []byte, error) {
	if len(buf) < 8 {
		return 0, nil, ErrCorrupt
	}
	return binary.LittleEndian.Uint64(buf), buf[8:], nil
}

func readString(buf []byte) (string, []byte, error) {
	n, buf, err := readU32(buf)
	if err != nil {
		return "", nil, err
	}
	if n > maxStringLen || int(n) > len(buf) {
		return "", nil, ErrCorrupt
	}
	return string(buf[:n]), buf[n:], nil
}
