package event

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"
)

func TestCodecRoundTrip(t *testing.T) {
	s := &Snippet{
		ID:        42,
		Source:    "nyt",
		Timestamp: time.Date(2014, 7, 17, 13, 37, 0, 123456789, time.UTC),
		Entities:  []Entity{"MAL", "RUS", "UKR"},
		Terms:     []Term{{"crash", 2.5}, {"plane", 1.0}},
		Text:      "A Malaysian airplane crashed over Ukraine.",
		Document:  "http://nytimes.com/doc1.html",
	}
	got, err := Decode(Encode(s))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	s.Intern() // decode interns; align the expected form
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
	}
}

func TestCodecEmptyFields(t *testing.T) {
	s := &Snippet{ID: 1, Source: "", Timestamp: time.Unix(0, 0).UTC()}
	got, err := Decode(Encode(s))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.ID != 1 || len(got.Entities) != 0 || len(got.Terms) != 0 {
		t.Fatalf("empty snippet mismatch: %+v", got)
	}
}

func TestCodecDeterministic(t *testing.T) {
	s := &Snippet{ID: 9, Source: "wsj", Timestamp: time.Unix(1000, 0).UTC(),
		Entities: []Entity{"A", "B"}, Terms: []Term{{"x", 1}}}
	if !bytes.Equal(Encode(s), Encode(s)) {
		t.Fatal("encoding is not deterministic")
	}
}

func TestDecodeTruncated(t *testing.T) {
	s := &Snippet{ID: 42, Source: "nyt", Timestamp: time.Unix(5, 0).UTC(),
		Entities: []Entity{"UKR"}, Terms: []Term{{"crash", 1}}, Text: "t", Document: "d"}
	full := Encode(s)
	for cut := 0; cut < len(full); cut++ {
		if _, err := Decode(full[:cut]); err == nil {
			t.Fatalf("Decode accepted truncation at %d/%d bytes", cut, len(full))
		}
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	s := &Snippet{ID: 1, Source: "nyt", Timestamp: time.Unix(5, 0).UTC(), Entities: []Entity{"A"}}
	buf := append(Encode(s), 0xde, 0xad)
	if _, err := Decode(buf); err == nil {
		t.Fatal("Decode accepted trailing garbage")
	}
}

func TestDecodeHugeLengthPrefix(t *testing.T) {
	// Craft a buffer whose source-string length claims 2^31 bytes.
	buf := make([]byte, 12)
	buf[8], buf[9], buf[10], buf[11] = 0xff, 0xff, 0xff, 0x7f
	if _, err := Decode(buf); err == nil {
		t.Fatal("Decode accepted absurd length prefix")
	}
}

// TestCodecQuick round-trips randomly generated snippets.
func TestCodecQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	gen := func() *Snippet {
		s := &Snippet{
			ID:        SnippetID(rng.Uint64()),
			Source:    SourceID(randWord(rng)),
			Timestamp: time.Unix(rng.Int63n(1e9), rng.Int63n(1e9)).UTC(),
			Text:      randWord(rng),
			Document:  randWord(rng),
		}
		for i := rng.Intn(5); i > 0; i-- {
			s.Entities = append(s.Entities, Entity(randWord(rng)))
		}
		for i := rng.Intn(5); i > 0; i-- {
			s.Terms = append(s.Terms, Term{randWord(rng), rng.Float64()})
		}
		return s
	}
	f := func(seed int64) bool {
		s := gen()
		got, err := Decode(Encode(s))
		if err != nil {
			return false
		}
		s.Intern() // decode interns; align the expected form
		return reflect.DeepEqual(got, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func randWord(rng *rand.Rand) string {
	n := 1 + rng.Intn(10)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('a' + rng.Intn(26))
	}
	return string(b)
}
