package sketch

import (
	"errors"
	"math"
	"math/bits"
)

// HyperLogLog estimates the number of distinct elements in a stream with
// fixed memory (Flajolet et al. 2007). The statistics module uses it to
// report distinct-entity counts on corpora where exact counting per
// source per window would dominate memory (the paper's dataset panel
// reports "# Entities" over a 10M-snippet feed).
//
// Standard error is ≈ 1.04/√m for m registers. Not safe for concurrent
// use.
type HyperLogLog struct {
	registers []uint8
	p         uint8 // precision: m = 2^p registers
}

// NewHyperLogLog creates a sketch with 2^precision registers
// (4 ≤ precision ≤ 18). precision 12 ⇒ 4096 registers ⇒ ~1.6% error.
func NewHyperLogLog(precision uint8) (*HyperLogLog, error) {
	if precision < 4 || precision > 18 {
		return nil, errors.New("sketch: hll precision must be in [4, 18]")
	}
	return &HyperLogLog{
		registers: make([]uint8, 1<<precision),
		p:         precision,
	}, nil
}

// mix64 is the SplitMix64 finaliser. FNV-1a's high-order bits avalanche
// poorly (the register index would concentrate in a few hundred buckets);
// the finaliser spreads them uniformly.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Add observes one element.
func (h *HyperLogLog) Add(elem string) {
	x := mix64(fnv64(elem))
	idx := x >> (64 - h.p)                           // first p bits pick the register
	rank := uint8(bits.LeadingZeros64(x<<h.p|1)) + 1 // rank of remaining bits
	if rank > h.registers[idx] {
		h.registers[idx] = rank
	}
}

// Count returns the cardinality estimate with the standard small- and
// large-range corrections.
func (h *HyperLogLog) Count() uint64 {
	m := float64(len(h.registers))
	var sum float64
	zeros := 0
	for _, r := range h.registers {
		sum += 1 / float64(uint64(1)<<r)
		if r == 0 {
			zeros++
		}
	}
	alpha := 0.7213 / (1 + 1.079/m)
	switch len(h.registers) {
	case 16:
		alpha = 0.673
	case 32:
		alpha = 0.697
	case 64:
		alpha = 0.709
	}
	est := alpha * m * m / sum
	// Small-range correction: linear counting.
	if est <= 2.5*m && zeros > 0 {
		est = m * math.Log(m/float64(zeros))
	}
	// Large-range correction for 64-bit hashes is negligible at our
	// scales; omitted (2^64 >> any corpus).
	return uint64(est + 0.5)
}

// Merge folds another sketch of the same precision into h.
func (h *HyperLogLog) Merge(other *HyperLogLog) error {
	if other == nil || h.p != other.p {
		return errors.New("sketch: hll precision mismatch")
	}
	for i, r := range other.registers {
		if r > h.registers[i] {
			h.registers[i] = r
		}
	}
	return nil
}

// Reset clears the sketch.
func (h *HyperLogLog) Reset() {
	for i := range h.registers {
		h.registers[i] = 0
	}
}
