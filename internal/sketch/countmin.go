package sketch

import (
	"math"
)

// CountMin is a Count-Min sketch (Cormode & Muthukrishnan 2005 — the data
// streams reference the paper cites for sketches): a fixed-size frequency
// summary with one-sided error. StoryPivot uses it to track global entity
// mention frequencies across the stream without holding exact counters for
// 10M-snippet corpora, which powers the statistics module's entity panels.
//
// CountMin is not safe for concurrent use; callers wrap it with their own
// synchronisation.
type CountMin struct {
	depth, width int
	rows         [][]uint64
	seeds        []uint64
	total        uint64
}

// NewCountMin creates a sketch with the given error bounds: estimates are
// within epsilon*N of the true count with probability 1-delta, where N is
// the total number of increments.
func NewCountMin(epsilon, delta float64) *CountMin {
	if epsilon <= 0 || epsilon >= 1 || delta <= 0 || delta >= 1 {
		panic("sketch: epsilon and delta must be in (0, 1)")
	}
	width := int(math.Ceil(math.E / epsilon))
	depth := int(math.Ceil(math.Log(1 / delta)))
	return NewCountMinSized(depth, width)
}

// NewCountMinSized creates a sketch with explicit dimensions.
func NewCountMinSized(depth, width int) *CountMin {
	if depth <= 0 || width <= 0 {
		panic("sketch: depth and width must be positive")
	}
	cm := &CountMin{depth: depth, width: width}
	cm.rows = make([][]uint64, depth)
	cm.seeds = make([]uint64, depth)
	for i := range cm.rows {
		cm.rows[i] = make([]uint64, width)
		cm.seeds[i] = 0x9e3779b97f4a7c15 * uint64(i+1)
	}
	return cm
}

// Add increments the count of key by n.
func (cm *CountMin) Add(key string, n uint64) {
	h := fnv64(key)
	for i := 0; i < cm.depth; i++ {
		idx := (h*cm.seeds[i] + cm.seeds[i]>>17) % uint64(cm.width)
		cm.rows[i][idx] += n
	}
	cm.total += n
}

// Count returns the estimated count of key (an overestimate with the
// configured probability bounds; never an underestimate).
func (cm *CountMin) Count(key string) uint64 {
	h := fnv64(key)
	min := uint64(math.MaxUint64)
	for i := 0; i < cm.depth; i++ {
		idx := (h*cm.seeds[i] + cm.seeds[i]>>17) % uint64(cm.width)
		if c := cm.rows[i][idx]; c < min {
			min = c
		}
	}
	return min
}

// Total returns the total number of increments observed.
func (cm *CountMin) Total() uint64 { return cm.total }

// Depth and Width expose the sketch dimensions.
func (cm *CountMin) Depth() int { return cm.depth }
func (cm *CountMin) Width() int { return cm.width }
