package sketch

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func setOf(n int, prefix string) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s%d", prefix, i)
	}
	return out
}

func trueJaccard(a, b []string) float64 {
	sa := make(map[string]bool, len(a))
	for _, x := range a {
		sa[x] = true
	}
	inter := 0
	sb := make(map[string]bool, len(b))
	for _, x := range b {
		if !sb[x] {
			sb[x] = true
			if sa[x] {
				inter++
			}
		}
	}
	union := len(sa) + len(sb) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

func TestMinHashEstimateAccuracy(t *testing.T) {
	m := NewMinHasher(256, 42)
	// Build sets with known Jaccard: |A|=|B|=100, overlap 50 -> J = 50/150.
	a := setOf(100, "x")
	b := append(setOf(50, "x"), setOf(50, "y")...)
	want := trueJaccard(a, b)
	got := Estimate(m.Sign(a), m.Sign(b))
	if math.Abs(got-want) > 0.1 {
		t.Fatalf("MinHash estimate %g too far from true Jaccard %g", got, want)
	}
}

func TestMinHashIdenticalAndDisjoint(t *testing.T) {
	m := NewMinHasher(64, 1)
	a := setOf(20, "e")
	if got := Estimate(m.Sign(a), m.Sign(a)); got != 1 {
		t.Errorf("identical sets estimate = %g, want 1", got)
	}
	b := setOf(20, "q")
	if got := Estimate(m.Sign(a), m.Sign(b)); got > 0.15 {
		t.Errorf("disjoint sets estimate = %g, want ~0", got)
	}
	// Empty signatures never match, even with each other.
	if got := Estimate(m.Sign(nil), m.Sign(nil)); got != 0 {
		t.Errorf("empty sets estimate = %g, want 0", got)
	}
	if got := Estimate(m.Sign(a), nil); got != 0 {
		t.Errorf("mismatched lengths estimate = %g, want 0", got)
	}
}

func TestMinHashIncrementalUpdateEqualsBatch(t *testing.T) {
	m := NewMinHasher(128, 7)
	all := setOf(50, "w")
	batch := m.Sign(all)
	incr := m.Sign(all[:20])
	m.Update(incr, all[20:])
	for i := range batch {
		if batch[i] != incr[i] {
			t.Fatalf("incremental signature diverges from batch at %d", i)
		}
	}
}

func TestMinHashMergeIsUnion(t *testing.T) {
	m := NewMinHasher(128, 7)
	a, b := setOf(30, "a"), setOf(30, "b")
	union := m.Sign(append(append([]string{}, a...), b...))
	merged := m.Sign(a)
	Merge(merged, m.Sign(b))
	for i := range union {
		if union[i] != merged[i] {
			t.Fatalf("merge != union signature at %d", i)
		}
	}
}

func TestMinHashSignInto(t *testing.T) {
	m := NewMinHasher(32, 3)
	a := setOf(10, "z")
	buf := make(Signature, 32)
	m.SignInto(buf, a)
	want := m.Sign(a)
	for i := range want {
		if buf[i] != want[i] {
			t.Fatal("SignInto differs from Sign")
		}
	}
}

func TestMinHashOrderInvariantQuick(t *testing.T) {
	m := NewMinHasher(64, 9)
	f := func(perm []byte) bool {
		elems := setOf(10, "p")
		shuffled := append([]string{}, elems...)
		rng := rand.New(rand.NewSource(int64(len(perm))))
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		s1, s2 := m.Sign(elems), m.Sign(shuffled)
		for i := range s1 {
			if s1[i] != s2[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNewMinHasherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMinHasher(0) did not panic")
		}
	}()
	NewMinHasher(0, 1)
}

func TestLSHFindsSimilarItems(t *testing.T) {
	m := NewMinHasher(64, 11)
	l := NewLSH(16, 4)

	base := setOf(100, "x")
	similar := append(setOf(90, "x"), setOf(10, "n")...) // J ≈ 0.82
	different := setOf(100, "q")

	if err := l.Add(1, m.Sign(base)); err != nil {
		t.Fatal(err)
	}
	if err := l.Add(2, m.Sign(different)); err != nil {
		t.Fatal(err)
	}
	got := l.Query(m.Sign(similar), ^uint64(0))
	found := false
	for _, k := range got {
		if k == 1 {
			found = true
		}
		if k == 2 {
			t.Error("LSH returned dissimilar item")
		}
	}
	if !found {
		t.Error("LSH missed highly similar item")
	}
}

func TestLSHAddUpdateRemove(t *testing.T) {
	m := NewMinHasher(64, 5)
	l := NewLSH(16, 4)
	a := setOf(50, "a")
	if err := l.Add(7, m.Sign(a)); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 1 {
		t.Fatalf("Len = %d", l.Len())
	}
	// Update with a completely different signature: old buckets must be
	// cleaned so the old set no longer finds key 7.
	b := setOf(50, "b")
	if err := l.Add(7, m.Sign(b)); err != nil {
		t.Fatal(err)
	}
	if got := l.Query(m.Sign(a), ^uint64(0)); len(got) != 0 {
		t.Errorf("stale buckets after update: %v", got)
	}
	if got := l.Query(m.Sign(b), ^uint64(0)); len(got) != 1 || got[0] != 7 {
		t.Errorf("updated item not found: %v", got)
	}
	if !l.Remove(7) {
		t.Fatal("Remove(7) = false")
	}
	if l.Remove(7) {
		t.Fatal("second Remove(7) = true")
	}
	if l.Len() != 0 {
		t.Fatalf("Len after remove = %d", l.Len())
	}
	if got := l.Query(m.Sign(b), ^uint64(0)); len(got) != 0 {
		t.Errorf("removed item still found: %v", got)
	}
}

func TestLSHExcludeKey(t *testing.T) {
	m := NewMinHasher(64, 5)
	l := NewLSH(16, 4)
	a := setOf(50, "a")
	l.Add(1, m.Sign(a))
	if got := l.Query(m.Sign(a), 1); len(got) != 0 {
		t.Errorf("excluded key returned: %v", got)
	}
}

func TestLSHSignatureLengthMismatch(t *testing.T) {
	l := NewLSH(4, 4)
	if err := l.Add(1, make(Signature, 7)); err == nil {
		t.Fatal("Add accepted wrong-length signature")
	}
	if got := l.Query(make(Signature, 7), ^uint64(0)); got != nil {
		t.Fatal("Query accepted wrong-length signature")
	}
}

func TestLSHSignatureAndKeys(t *testing.T) {
	m := NewMinHasher(16, 2)
	l := NewLSH(4, 4)
	sig := m.Sign(setOf(5, "k"))
	l.Add(3, sig)
	got := l.Signature(3)
	if got == nil || got[0] != sig[0] {
		t.Fatal("Signature(3) wrong")
	}
	if l.Signature(99) != nil {
		t.Fatal("Signature of absent key should be nil")
	}
	if keys := l.Keys(); len(keys) != 1 || keys[0] != 3 {
		t.Fatalf("Keys = %v", keys)
	}
}

func TestLSHConcurrent(t *testing.T) {
	m := NewMinHasher(64, 5)
	l := NewLSH(16, 4)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		g := g
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 50; i++ {
				key := uint64(g*1000 + i)
				sig := m.Sign(setOf(20, fmt.Sprintf("g%d-%d-", g, i)))
				l.Add(key, sig)
				l.Query(sig, key)
				if i%3 == 0 {
					l.Remove(key)
				}
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}

func TestCountMinNeverUnderestimates(t *testing.T) {
	cm := NewCountMin(0.01, 0.01)
	truth := map[string]uint64{}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 5000; i++ {
		key := fmt.Sprintf("e%d", rng.Intn(200))
		cm.Add(key, 1)
		truth[key]++
	}
	for k, want := range truth {
		if got := cm.Count(k); got < want {
			t.Fatalf("Count(%s) = %d underestimates true %d", k, got, want)
		}
	}
	if cm.Total() != 5000 {
		t.Errorf("Total = %d", cm.Total())
	}
}

func TestCountMinErrorBound(t *testing.T) {
	eps := 0.005
	cm := NewCountMin(eps, 0.01)
	for i := 0; i < 10000; i++ {
		cm.Add(fmt.Sprintf("k%d", i%500), 1)
	}
	// Allow a small number of violations of the eps*N bound (prob delta).
	violations := 0
	bound := uint64(float64(cm.Total()) * eps * 2)
	for i := 0; i < 500; i++ {
		got := cm.Count(fmt.Sprintf("k%d", i))
		if got > 20+bound {
			violations++
		}
	}
	if violations > 5 {
		t.Fatalf("%d estimates exceeded error bound", violations)
	}
}

func TestCountMinUnknownKey(t *testing.T) {
	cm := NewCountMinSized(4, 1024)
	if got := cm.Count("never-added"); got != 0 {
		t.Fatalf("empty sketch Count = %d", got)
	}
	if cm.Depth() != 4 || cm.Width() != 1024 {
		t.Error("dimension accessors wrong")
	}
}

func TestCountMinPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewCountMin(0, 0.5) },
		func() { NewCountMin(0.5, 1.5) },
		func() { NewCountMinSized(0, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBloomNoFalseNegatives(t *testing.T) {
	b := NewBloom(1000, 0.01)
	for i := 0; i < 1000; i++ {
		b.Add(fmt.Sprintf("snippet-%d", i))
	}
	for i := 0; i < 1000; i++ {
		if !b.Contains(fmt.Sprintf("snippet-%d", i)) {
			t.Fatalf("false negative for snippet-%d", i)
		}
	}
	if b.Count() != 1000 {
		t.Errorf("Count = %d", b.Count())
	}
}

func TestBloomFalsePositiveRate(t *testing.T) {
	b := NewBloom(1000, 0.01)
	for i := 0; i < 1000; i++ {
		b.Add(fmt.Sprintf("in-%d", i))
	}
	fp := 0
	const probes = 10000
	for i := 0; i < probes; i++ {
		if b.Contains(fmt.Sprintf("out-%d", i)) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Fatalf("false positive rate %g far above target 0.01", rate)
	}
}

func TestBloomDegenerateParams(t *testing.T) {
	b := NewBloom(0, 2.0) // both invalid; must still work
	b.Add("x")
	if !b.Contains("x") {
		t.Fatal("degenerate bloom lost element")
	}
}
