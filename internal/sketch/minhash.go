// Package sketch provides the compact probabilistic summaries StoryPivot
// uses to compare snippets and stories cheaply (paper §2.4: "we propose to
// abstract from snippets and stories into one common format which we refer
// to as a sketch ... that allows for fast and efficient similarity
// comparisons"). It contains MinHash signatures with a banded LSH index for
// candidate retrieval, a Count-Min sketch for frequency estimation, and a
// Bloom filter for membership tests — all built from scratch on FNV-style
// hashing, stdlib only.
package sketch

import (
	"errors"
	"math"
)

// MinHasher computes fixed-length MinHash signatures of string sets. The
// expected fraction of agreeing signature positions between two sets equals
// their Jaccard similarity, which lets alignment filter candidate story
// pairs without touching full entity/term sets.
//
// Hash family: h_i(x) = a_i * fnv64(x) + b_i over the 64-bit ring, a
// standard universal-style construction. A MinHasher is immutable after
// creation and safe for concurrent use.
type MinHasher struct {
	a, b []uint64
}

// NewMinHasher creates a hasher producing signatures of the given length.
// The seed determines the hash family; identical (length, seed) pairs
// produce comparable signatures.
func NewMinHasher(length int, seed uint64) *MinHasher {
	if length <= 0 {
		panic("sketch: signature length must be positive")
	}
	m := &MinHasher{a: make([]uint64, length), b: make([]uint64, length)}
	// SplitMix64 to derive the family from the seed.
	s := seed
	next := func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := 0; i < length; i++ {
		m.a[i] = next() | 1 // odd multiplier
		m.b[i] = next()
	}
	return m
}

// Length returns the signature length.
func (m *MinHasher) Length() int { return len(m.a) }

// Signature is a MinHash signature.
type Signature []uint64

// Sign computes the signature of the given set of string elements. An empty
// set yields the all-max signature, which matches nothing.
func (m *MinHasher) Sign(elems []string) Signature {
	sig := make(Signature, len(m.a))
	for i := range sig {
		sig[i] = math.MaxUint64
	}
	for _, e := range elems {
		h := fnv64(e)
		for i := range sig {
			v := m.a[i]*h + m.b[i]
			if v < sig[i] {
				sig[i] = v
			}
		}
	}
	return sig
}

// SignInto is Sign reusing a caller-provided signature buffer (which must
// have the hasher's length); it avoids allocation on hot paths.
func (m *MinHasher) SignInto(sig Signature, elems []string) {
	for i := range sig {
		sig[i] = math.MaxUint64
	}
	for _, e := range elems {
		h := fnv64(e)
		for i := range sig {
			v := m.a[i]*h + m.b[i]
			if v < sig[i] {
				sig[i] = v
			}
		}
	}
}

// Update folds additional elements into an existing signature. Because
// MinHash is a running minimum, updates are associative and commutative:
// a story's sketch can be maintained incrementally as snippets arrive.
func (m *MinHasher) Update(sig Signature, elems []string) {
	for _, e := range elems {
		h := fnv64(e)
		for i := range sig {
			v := m.a[i]*h + m.b[i]
			if v < sig[i] {
				sig[i] = v
			}
		}
	}
}

// UpdateHash folds one pre-hashed element (see HashElem) into sig and
// reports whether any position changed. A running minimum converges as a
// set grows, so callers maintaining an index can skip re-bucketing when
// an update leaves the signature untouched — the common case for mature
// stories.
func (m *MinHasher) UpdateHash(sig Signature, h uint64) bool {
	changed := false
	for i := range sig {
		v := m.a[i]*h + m.b[i]
		if v < sig[i] {
			sig[i] = v
			changed = true
		}
	}
	return changed
}

// ResetSignature fills sig with the empty-set signature (all-max), for
// reuse with UpdateHash/SignInto.
func ResetSignature(sig Signature) {
	for i := range sig {
		sig[i] = math.MaxUint64
	}
}

// Merge combines two signatures element-wise (the signature of the union
// of the underlying sets). dst and src must have equal length.
func Merge(dst, src Signature) {
	for i := range dst {
		if src[i] < dst[i] {
			dst[i] = src[i]
		}
	}
}

// Estimate returns the estimated Jaccard similarity between the sets that
// produced the two signatures: the fraction of agreeing positions.
func Estimate(a, b Signature) float64 {
	if len(a) == 0 || len(a) != len(b) {
		return 0
	}
	match := 0
	for i := range a {
		if a[i] == b[i] && a[i] != math.MaxUint64 {
			match++
		}
	}
	return float64(match) / float64(len(a))
}

// Clone returns a copy of the signature.
func (s Signature) Clone() Signature { return append(Signature(nil), s...) }

// ErrSignatureLength is returned when signatures of mismatched length meet.
var ErrSignatureLength = errors.New("sketch: signature length mismatch")

// FNV-64a, inlined: the stdlib hash.Hash64 costs one object plus one
// []byte conversion per element, which dominated the sketch-index
// allocation profile. The values are identical to hash/fnv's.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv64(s string) uint64 {
	h := uint64(fnvOffset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// HashElem returns the FNV-64a hash of the element "<kind>:<s>" without
// materialising the tagged string. Callers that maintain signatures
// incrementally use it with UpdateHash to sketch straight from their own
// representation (e.g. interned vocabulary IDs) with zero garbage.
func HashElem(kind byte, s string) uint64 {
	h := uint64(fnvOffset64)
	h ^= uint64(kind)
	h *= fnvPrime64
	h ^= uint64(':')
	h *= fnvPrime64
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

// hashBand hashes one band of a signature to a bucket key (little-endian
// byte order, matching the previous encoding/binary implementation).
func hashBand(sig Signature, start, end int) uint64 {
	h := uint64(fnvOffset64)
	for i := start; i < end; i++ {
		v := sig[i]
		for b := 0; b < 64; b += 8 {
			h ^= uint64(byte(v >> b))
			h *= fnvPrime64
		}
	}
	return h
}
