package sketch

import (
	"fmt"
	"math"
	"testing"
)

func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{100, 1000, 50000} {
		h, err := NewHyperLogLog(12)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			h.Add(fmt.Sprintf("entity-%d", i))
		}
		got := float64(h.Count())
		relErr := math.Abs(got-float64(n)) / float64(n)
		if relErr > 0.05 {
			t.Errorf("n=%d estimate=%d relative error %.3f > 5%%", n, h.Count(), relErr)
		}
	}
}

func TestHLLDuplicatesDoNotInflate(t *testing.T) {
	h, _ := NewHyperLogLog(12)
	for round := 0; round < 10; round++ {
		for i := 0; i < 500; i++ {
			h.Add(fmt.Sprintf("e%d", i))
		}
	}
	got := float64(h.Count())
	if math.Abs(got-500)/500 > 0.05 {
		t.Fatalf("estimate %d for 500 distinct with duplicates", h.Count())
	}
}

func TestHLLEmptyAndReset(t *testing.T) {
	h, _ := NewHyperLogLog(10)
	if got := h.Count(); got != 0 {
		t.Fatalf("empty Count = %d", got)
	}
	h.Add("x")
	if h.Count() == 0 {
		t.Fatal("Count after Add = 0")
	}
	h.Reset()
	if got := h.Count(); got != 0 {
		t.Fatalf("Count after Reset = %d", got)
	}
}

func TestHLLMerge(t *testing.T) {
	a, _ := NewHyperLogLog(12)
	b, _ := NewHyperLogLog(12)
	for i := 0; i < 1000; i++ {
		a.Add(fmt.Sprintf("a%d", i))
		b.Add(fmt.Sprintf("b%d", i))
	}
	// 200 shared elements.
	for i := 0; i < 200; i++ {
		a.Add(fmt.Sprintf("s%d", i))
		b.Add(fmt.Sprintf("s%d", i))
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	got := float64(a.Count())
	want := 2200.0
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("merged estimate %d, want ~%d", a.Count(), int(want))
	}
	// Mismatched precision rejected.
	c, _ := NewHyperLogLog(10)
	if err := a.Merge(c); err == nil {
		t.Fatal("precision mismatch accepted")
	}
	if err := a.Merge(nil); err == nil {
		t.Fatal("nil merge accepted")
	}
}

func TestHLLPrecisionBounds(t *testing.T) {
	if _, err := NewHyperLogLog(3); err == nil {
		t.Fatal("precision 3 accepted")
	}
	if _, err := NewHyperLogLog(19); err == nil {
		t.Fatal("precision 19 accepted")
	}
	if _, err := NewHyperLogLog(4); err != nil {
		t.Fatal(err)
	}
}
