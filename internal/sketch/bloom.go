package sketch

import (
	"math"
)

// Bloom is a Bloom filter: a compact set-membership summary with
// configurable false-positive rate and no false negatives. The stream
// engine uses one per source to cheaply reject duplicate snippet
// deliveries (feeds can re-deliver on reconnect).
//
// Bloom is not safe for concurrent use.
type Bloom struct {
	bits   []uint64
	nbits  uint64
	hashes int
	count  uint64
}

// NewBloom sizes a filter for the expected number of elements n and target
// false-positive probability p.
func NewBloom(n int, p float64) *Bloom {
	if n <= 0 {
		n = 1
	}
	if p <= 0 || p >= 1 {
		p = 0.01
	}
	m := uint64(math.Ceil(-float64(n) * math.Log(p) / (math.Ln2 * math.Ln2)))
	if m < 64 {
		m = 64
	}
	k := int(math.Round(float64(m) / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	return &Bloom{
		bits:   make([]uint64, (m+63)/64),
		nbits:  m,
		hashes: k,
	}
}

// Add inserts key into the filter.
func (b *Bloom) Add(key string) {
	h1, h2 := b.hashPair(key)
	for i := 0; i < b.hashes; i++ {
		idx := (h1 + uint64(i)*h2) % b.nbits
		b.bits[idx/64] |= 1 << (idx % 64)
	}
	b.count++
}

// Contains reports whether key may have been added (false positives
// possible, false negatives not).
func (b *Bloom) Contains(key string) bool {
	h1, h2 := b.hashPair(key)
	for i := 0; i < b.hashes; i++ {
		idx := (h1 + uint64(i)*h2) % b.nbits
		if b.bits[idx/64]&(1<<(idx%64)) == 0 {
			return false
		}
	}
	return true
}

// Count returns the number of Add calls (not distinct elements).
func (b *Bloom) Count() uint64 { return b.count }

// hashPair derives two independent 64-bit hashes via Kirsch-Mitzenmacher
// double hashing.
func (b *Bloom) hashPair(key string) (uint64, uint64) {
	h := fnv64(key)
	h2 := h*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	h2 |= 1 // must be odd so the stride covers the ring
	return h, h2
}
