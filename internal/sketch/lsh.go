package sketch

import (
	"fmt"
	"sync"
)

// LSH is a banded locality-sensitive-hash index over MinHash signatures.
// Signatures are cut into b bands of r rows; two items collide (become
// candidates) if any band hashes identically. With Jaccard similarity s the
// collision probability is 1-(1-s^r)^b, the classic S-curve, so the (b, r)
// choice tunes the similarity threshold at which candidates surface.
//
// StoryPivot uses the index two ways: story identification (temporal mode)
// retrieves candidate stories for an incoming snippet, and story alignment
// retrieves candidate story pairs across sources. LSH is safe for
// concurrent use.
type LSH struct {
	bands, rows int

	mu      sync.RWMutex
	buckets []map[uint64][]uint64 // per band: band-hash -> item keys
	sigs    map[uint64]Signature  // item key -> current signature
	// free recycles emptied bucket slices. Incremental signature updates
	// re-add an item with fresh band hashes on every event, draining one
	// set of buckets and filling another; without recycling, each re-add
	// allocates bands-many single-element slices.
	free [][]uint64
}

// NewLSH creates an index for signatures of length bands*rows.
func NewLSH(bands, rows int) *LSH {
	if bands <= 0 || rows <= 0 {
		panic("sketch: bands and rows must be positive")
	}
	l := &LSH{
		bands:   bands,
		rows:    rows,
		buckets: make([]map[uint64][]uint64, bands),
		sigs:    make(map[uint64]Signature),
	}
	for i := range l.buckets {
		l.buckets[i] = make(map[uint64][]uint64)
	}
	return l
}

// SignatureLength returns the signature length the index expects.
func (l *LSH) SignatureLength() int { return l.bands * l.rows }

// Add inserts (or re-inserts) an item with the given signature. If the key
// is already present it is removed first, so Add doubles as update.
func (l *LSH) Add(key uint64, sig Signature) error {
	if len(sig) != l.bands*l.rows {
		return fmt.Errorf("%w: got %d, want %d", ErrSignatureLength, len(sig), l.bands*l.rows)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	var own Signature
	if old, ok := l.sigs[key]; ok {
		l.removeLocked(key)
		// Re-adds refresh a story's signature on every snippet; reuse the
		// previous copy's backing array instead of cloning each time.
		if len(old) == len(sig) {
			copy(old, sig)
			own = old
		}
	}
	if own == nil {
		own = sig.Clone()
	}
	l.sigs[key] = own
	for band := 0; band < l.bands; band++ {
		h := hashBand(own, band*l.rows, (band+1)*l.rows)
		bucket := l.buckets[band][h]
		if bucket == nil && len(l.free) > 0 {
			bucket = l.free[len(l.free)-1]
			l.free = l.free[:len(l.free)-1]
		}
		l.buckets[band][h] = append(bucket, key)
	}
	return nil
}

// Remove deletes an item. It reports whether the key was present.
func (l *LSH) Remove(key uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if _, ok := l.sigs[key]; !ok {
		return false
	}
	l.removeLocked(key)
	return true
}

func (l *LSH) removeLocked(key uint64) {
	sig := l.sigs[key]
	for band := 0; band < l.bands; band++ {
		h := hashBand(sig, band*l.rows, (band+1)*l.rows)
		bucket := l.buckets[band][h]
		for i, k := range bucket {
			if k == key {
				bucket[i] = bucket[len(bucket)-1]
				bucket = bucket[:len(bucket)-1]
				break
			}
		}
		if len(bucket) == 0 {
			delete(l.buckets[band], h)
			l.free = append(l.free, bucket[:0])
		} else {
			l.buckets[band][h] = bucket
		}
	}
	delete(l.sigs, key)
}

// Query returns the keys of all items sharing at least one band with the
// given signature, excluding excludeKey (pass ^uint64(0) to exclude
// nothing). The result order is unspecified but duplicate-free.
func (l *LSH) Query(sig Signature, excludeKey uint64) []uint64 {
	return l.QueryAppend(sig, excludeKey, nil)
}

// QueryAppend is Query appending into out (capacity reused), for callers
// that query per event and want an allocation-free steady state.
// Deduplication is a linear scan of the appended region: candidate sets
// are small (a few keys per colliding band), where a scan beats a map.
func (l *LSH) QueryAppend(sig Signature, excludeKey uint64, out []uint64) []uint64 {
	if len(sig) != l.bands*l.rows {
		return out
	}
	l.mu.RLock()
	defer l.mu.RUnlock()
	base := len(out)
	for band := 0; band < l.bands; band++ {
		h := hashBand(sig, band*l.rows, (band+1)*l.rows)
	next:
		for _, k := range l.buckets[band][h] {
			if k == excludeKey {
				continue
			}
			for _, prev := range out[base:] {
				if prev == k {
					continue next
				}
			}
			out = append(out, k)
		}
	}
	return out
}

// Signature returns the current signature of key, or nil if absent. The
// returned slice is the index's own copy; callers must not modify it.
func (l *LSH) Signature(key uint64) Signature {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.sigs[key]
}

// Len returns the number of indexed items.
func (l *LSH) Len() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.sigs)
}

// Keys returns all indexed keys in unspecified order.
func (l *LSH) Keys() []uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	out := make([]uint64, 0, len(l.sigs))
	for k := range l.sigs {
		out = append(out, k)
	}
	return out
}
