package vocab

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestInternerRoundTrip(t *testing.T) {
	in := NewInterner()
	a := in.ID("alpha")
	b := in.ID("beta")
	if a == b {
		t.Fatalf("distinct strings share symbol %d", a)
	}
	if got := in.ID("alpha"); got != a {
		t.Fatalf("re-interning alpha = %d, want %d", got, a)
	}
	if got := in.String(a); got != "alpha" {
		t.Fatalf("String(%d) = %q, want alpha", a, got)
	}
	if got := in.String(b); got != "beta" {
		t.Fatalf("String(%d) = %q, want beta", b, got)
	}
	if id, ok := in.Lookup("beta"); !ok || id != b {
		t.Fatalf("Lookup(beta) = %d,%v", id, ok)
	}
	if _, ok := in.Lookup("gamma"); ok {
		t.Fatal("Lookup found a string that was never interned")
	}
	if in.Len() != 2 {
		t.Fatalf("Len = %d, want 2", in.Len())
	}
}

// TestInternerConcurrent hammers one interner from many goroutines over
// an overlapping key space and checks that every string gets exactly one
// symbol and every symbol maps back to its string. Run under -race this
// validates the lock-free read paths.
func TestInternerConcurrent(t *testing.T) {
	in := NewInterner()
	const workers = 8
	const keys = 500
	results := make([][]uint32, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids := make([]uint32, keys)
			for k := 0; k < keys; k++ {
				ids[k] = in.ID(fmt.Sprintf("key-%d", k))
				// Interleave reads with writes.
				if got := in.String(ids[k]); got != fmt.Sprintf("key-%d", k) {
					t.Errorf("String(%d) = %q mid-intern", ids[k], got)
					return
				}
			}
			results[w] = ids
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	for w := 1; w < workers; w++ {
		for k := 0; k < keys; k++ {
			if results[w][k] != results[0][k] {
				t.Fatalf("worker %d got %d for key-%d, worker 0 got %d", w, results[w][k], k, results[0][k])
			}
		}
	}
	if in.Len() != keys {
		t.Fatalf("Len = %d, want %d", in.Len(), keys)
	}
}

// vector helpers --------------------------------------------------------

func weightsFromMap(m map[uint32]float64) []IDWeight {
	out := make([]IDWeight, 0, len(m))
	for id, w := range m {
		out = append(out, IDWeight{ID: id, W: w})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func countsFromMap(m map[uint32]int) []IDCount {
	out := make([]IDCount, 0, len(m))
	for id, n := range m {
		out = append(out, IDCount{ID: id, N: int32(n)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func checkSortedWeights(t *testing.T, v []IDWeight) {
	t.Helper()
	for i := 1; i < len(v); i++ {
		if v[i-1].ID >= v[i].ID {
			t.Fatalf("vector not strictly sorted at %d: %v", i, v)
		}
	}
}

// TestAddSubWeightsAgainstMap cross-checks the merge arithmetic against
// a plain map model over random add/sub cycles, including the in-place
// and spare-capacity paths.
func TestAddSubWeightsAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	model := map[uint32]float64{}
	var vec []IDWeight
	for step := 0; step < 300; step++ {
		op := map[uint32]float64{}
		for k := 0; k < 1+rng.Intn(6); k++ {
			op[uint32(rng.Intn(40))] = 0.1 + rng.Float64()
		}
		if rng.Intn(3) > 0 {
			for id, w := range op {
				model[id] += w
			}
			vec = AddWeights(vec, weightsFromMap(op))
		} else {
			for id, w := range op {
				if model[id] -= w; model[id] <= epsWeight {
					delete(model, id)
				}
			}
			vec = SubWeights(vec, weightsFromMap(op))
		}
		checkSortedWeights(t, vec)
		if len(vec) != len(model) {
			t.Fatalf("step %d: len %d, model %d", step, len(vec), len(model))
		}
		for _, e := range vec {
			if math.Abs(e.W-model[e.ID]) > 1e-9 {
				t.Fatalf("step %d: id %d weight %g, model %g", step, e.ID, e.W, model[e.ID])
			}
			if WeightAt(vec, e.ID) != e.W {
				t.Fatalf("WeightAt(%d) mismatch", e.ID)
			}
		}
	}
}

func TestIncDecCountsAgainstMap(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	model := map[uint32]int{}
	var vec []IDCount
	for step := 0; step < 300; step++ {
		idSet := map[uint32]bool{}
		for k := 0; k < 1+rng.Intn(5); k++ {
			idSet[uint32(rng.Intn(30))] = true
		}
		ids := make([]uint32, 0, len(idSet))
		for id := range idSet {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		if rng.Intn(3) > 0 {
			for _, id := range ids {
				model[id]++
			}
			vec = IncCounts(vec, ids)
		} else {
			for _, id := range ids {
				if model[id] > 0 {
					if model[id]--; model[id] == 0 {
						delete(model, id)
					}
				}
			}
			vec = DecCounts(vec, ids)
		}
		if len(vec) != len(model) {
			t.Fatalf("step %d: len %d, model %d (vec %v model %v)", step, len(vec), len(model), vec, model)
		}
		for _, e := range vec {
			if int(e.N) != model[e.ID] {
				t.Fatalf("step %d: id %d count %d, model %d", step, e.ID, e.N, model[e.ID])
			}
			if CountAt(vec, e.ID) != model[e.ID] {
				t.Fatalf("CountAt(%d) mismatch", e.ID)
			}
		}
	}
}

func TestAddCountsMergesVectors(t *testing.T) {
	a := countsFromMap(map[uint32]int{1: 2, 5: 1, 9: 4})
	b := countsFromMap(map[uint32]int{0: 1, 5: 3, 12: 2})
	got := AddCounts(append([]IDCount(nil), a...), b)
	want := countsFromMap(map[uint32]int{0: 1, 1: 2, 5: 4, 9: 4, 12: 2})
	if len(got) != len(want) {
		t.Fatalf("AddCounts = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("AddCounts = %v, want %v", got, want)
		}
	}
}

func TestWeightNorm(t *testing.T) {
	v := []IDWeight{{1, 3}, {2, 4}}
	if got := WeightNorm(v); math.Abs(got-5) > 1e-12 {
		t.Fatalf("WeightNorm = %g, want 5", got)
	}
	if WeightNorm(nil) != 0 {
		t.Fatal("WeightNorm(nil) != 0")
	}
}
