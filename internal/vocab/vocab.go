// Package vocab provides the process-wide vocabulary interner that backs
// StoryPivot's flat similarity kernel: every description token and entity
// string is mapped once to a dense uint32 symbol, and all hot-path
// similarity arithmetic (snippet-vs-story, story-vs-story) runs over
// sorted []IDWeight / []IDCount sparse vectors instead of string-keyed
// maps. Interning happens at the edges (tokenization, normalization,
// codec decode); the kernels in internal/similarity then do merge walks
// over integer IDs with zero allocation per comparison.
//
// The interner is append-only: symbols are never removed, so readers can
// run lock-free. ID lookup takes a sync.Map fast path; the id→string
// table is published as an immutable slice header behind an atomic
// pointer. Only the (rare) first sighting of a new string takes the
// writer mutex.
package vocab

import (
	"sync"
	"sync/atomic"
)

// Interner is an append-only string→uint32 symbol table safe for
// concurrent use. The zero value is NOT ready; use NewInterner.
type Interner struct {
	ids sync.Map // string → uint32, lock-free reads

	mu   sync.Mutex     // serialises writers
	list []string       // authoritative id → string, guarded by mu
	snap atomic.Pointer[[]string] // published immutable view of list
}

// NewInterner creates an empty interner.
func NewInterner() *Interner {
	in := &Interner{}
	empty := []string(nil)
	in.snap.Store(&empty)
	return in
}

// Process-wide tables. Tokens and entities are separate namespaces: a
// token "ukraine" and an entity "ukraine" are distinct symbols.
var (
	// Terms interns description tokens.
	Terms = NewInterner()
	// Entities interns entity identifiers.
	Entities = NewInterner()
)

// ID returns the symbol for s, interning it on first sight. The fast
// path (already-interned strings, i.e. every string after warm-up) is a
// single lock-free map load.
func (in *Interner) ID(s string) uint32 {
	if v, ok := in.ids.Load(s); ok {
		return v.(uint32)
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if v, ok := in.ids.Load(s); ok { // raced with another writer
		return v.(uint32)
	}
	id := uint32(len(in.list))
	in.list = append(in.list, s)
	view := in.list // immutable header: writers only ever append
	in.snap.Store(&view)
	in.ids.Store(s, id)
	return id
}

// Lookup returns the symbol for s without interning, reporting whether
// it exists. Lock-free.
func (in *Interner) Lookup(s string) (uint32, bool) {
	v, ok := in.ids.Load(s)
	if !ok {
		return 0, false
	}
	return v.(uint32), true
}

// String returns the string for a symbol previously returned by ID.
// Lock-free for any id the caller legitimately holds; unknown ids yield
// the empty string.
func (in *Interner) String(id uint32) string {
	view := *in.snap.Load()
	if int(id) < len(view) {
		return view[id]
	}
	// The caller's id may have been published between our snapshot load
	// and now; fall back to the authoritative list.
	in.mu.Lock()
	defer in.mu.Unlock()
	if int(id) < len(in.list) {
		return in.list[id]
	}
	return ""
}

// Len returns the number of interned symbols.
func (in *Interner) Len() int {
	return len(*in.snap.Load())
}
