package vocab

import "math"

// Flat sparse vectors: the story/snippet aggregate representation of the
// similarity hot path. Both types are kept sorted by ascending ID so
// that every binary operation is a linear merge walk — cache-friendly,
// branch-predictable, and allocation-free on the read side. The update
// helpers (Add*/Sub*/Inc*/Dec*) reuse the destination's backing array
// whenever capacity allows, so steady-state story updates do not
// allocate either.

// IDWeight is one component of a weighted sparse vector (a term and its
// aggregate TF-IDF weight).
type IDWeight struct {
	ID uint32
	W  float64
}

// IDCount is one component of a counting sparse vector (an entity and
// the number of snippets mentioning it).
type IDCount struct {
	ID uint32
	N  int32
}

// epsWeight is the threshold below which a subtracted weight is treated
// as zero and dropped (floating-point residue from add/remove cycles).
const epsWeight = 1e-12

// WeightNorm returns the Euclidean norm of v.
func WeightNorm(v []IDWeight) float64 {
	var sum float64
	for _, e := range v {
		sum += e.W * e.W
	}
	return math.Sqrt(sum)
}

// WeightAt returns the weight of id in v (0 when absent) via binary
// search.
func WeightAt(v []IDWeight, id uint32) float64 {
	lo, hi := 0, len(v)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v[mid].ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(v) && v[lo].ID == id {
		return v[lo].W
	}
	return 0
}

// CountAt returns the count of id in v (0 when absent) via binary
// search.
func CountAt(v []IDCount, id uint32) int {
	lo, hi := 0, len(v)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if v[mid].ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(v) && v[lo].ID == id {
		return int(v[lo].N)
	}
	return 0
}

// AddWeights merges add into dst (both sorted by ID), summing weights of
// shared IDs, and returns the updated vector. When every ID of add is
// already present the update is fully in place; when new IDs fit in
// dst's spare capacity they are merged in from the back without
// allocating.
func AddWeights(dst, add []IDWeight) []IDWeight {
	if len(add) == 0 {
		return dst
	}
	// Count IDs of add that are missing from dst.
	missing := 0
	i, j := 0, 0
	for j < len(add) {
		switch {
		case i < len(dst) && dst[i].ID < add[j].ID:
			i++
		case i < len(dst) && dst[i].ID == add[j].ID:
			i++
			j++
		default:
			missing++
			j++
		}
	}
	if missing == 0 {
		i = 0
		for _, a := range add {
			for dst[i].ID != a.ID {
				i++
			}
			dst[i].W += a.W
		}
		return dst
	}
	n := len(dst)
	if cap(dst) >= n+missing {
		dst = dst[:n+missing]
	} else {
		grown := make([]IDWeight, n+missing, (n+missing)*2)
		copy(grown, dst[:n])
		dst = grown
	}
	// Backward merge: read cursors at the old ends, write cursor at the
	// new end.
	w := len(dst) - 1
	i, j = n-1, len(add)-1
	for j >= 0 {
		if i >= 0 && dst[i].ID > add[j].ID {
			dst[w] = dst[i]
			i--
		} else if i >= 0 && dst[i].ID == add[j].ID {
			dst[w] = IDWeight{ID: add[j].ID, W: dst[i].W + add[j].W}
			i--
			j--
		} else {
			dst[w] = add[j]
			j--
		}
		w--
	}
	// Remaining dst prefix is already in place.
	return dst
}

// SubWeights subtracts sub from dst in place (both sorted by ID),
// dropping components whose weight falls to (near) zero, and returns the
// compacted vector. IDs of sub absent from dst are ignored.
func SubWeights(dst, sub []IDWeight) []IDWeight {
	if len(sub) == 0 {
		return dst
	}
	j := 0
	w := 0
	for i := 0; i < len(dst); i++ {
		e := dst[i]
		for j < len(sub) && sub[j].ID < e.ID {
			j++
		}
		if j < len(sub) && sub[j].ID == e.ID {
			e.W -= sub[j].W
			j++
		}
		if e.W > epsWeight {
			dst[w] = e
			w++
		}
	}
	return dst[:w]
}

// AddCounts merges the counting vector add into dst (both sorted by ID)
// and returns the updated vector, reusing dst's backing array when
// possible (same contract as AddWeights).
func AddCounts(dst, add []IDCount) []IDCount {
	if len(add) == 0 {
		return dst
	}
	missing := 0
	i, j := 0, 0
	for j < len(add) {
		switch {
		case i < len(dst) && dst[i].ID < add[j].ID:
			i++
		case i < len(dst) && dst[i].ID == add[j].ID:
			i++
			j++
		default:
			missing++
			j++
		}
	}
	if missing == 0 {
		i = 0
		for _, a := range add {
			for dst[i].ID != a.ID {
				i++
			}
			dst[i].N += a.N
		}
		return dst
	}
	n := len(dst)
	if cap(dst) >= n+missing {
		dst = dst[:n+missing]
	} else {
		grown := make([]IDCount, n+missing, (n+missing)*2)
		copy(grown, dst[:n])
		dst = grown
	}
	w := len(dst) - 1
	i, j = n-1, len(add)-1
	for j >= 0 {
		if i >= 0 && dst[i].ID > add[j].ID {
			dst[w] = dst[i]
			i--
		} else if i >= 0 && dst[i].ID == add[j].ID {
			dst[w] = IDCount{ID: add[j].ID, N: dst[i].N + add[j].N}
			i--
			j--
		} else {
			dst[w] = add[j]
			j--
		}
		w--
	}
	return dst
}

// IncCounts increments dst by one for every id in ids (sorted, unique)
// and returns the updated vector (a snippet joining a story).
func IncCounts(dst []IDCount, ids []uint32) []IDCount {
	if len(ids) == 0 {
		return dst
	}
	missing := 0
	i, j := 0, 0
	for j < len(ids) {
		switch {
		case i < len(dst) && dst[i].ID < ids[j]:
			i++
		case i < len(dst) && dst[i].ID == ids[j]:
			i++
			j++
		default:
			missing++
			j++
		}
	}
	if missing == 0 {
		i = 0
		for _, id := range ids {
			for dst[i].ID != id {
				i++
			}
			dst[i].N++
		}
		return dst
	}
	n := len(dst)
	if cap(dst) >= n+missing {
		dst = dst[:n+missing]
	} else {
		grown := make([]IDCount, n+missing, (n+missing)*2)
		copy(grown, dst[:n])
		dst = grown
	}
	w := len(dst) - 1
	i, j = n-1, len(ids)-1
	for j >= 0 {
		if i >= 0 && dst[i].ID > ids[j] {
			dst[w] = dst[i]
			i--
		} else if i >= 0 && dst[i].ID == ids[j] {
			dst[w] = IDCount{ID: ids[j], N: dst[i].N + 1}
			i--
			j--
		} else {
			dst[w] = IDCount{ID: ids[j], N: 1}
			j--
		}
		w--
	}
	return dst
}

// DecCounts decrements dst by one for every id in ids (sorted, unique),
// dropping components that reach zero, and returns the compacted vector
// (a snippet leaving a story).
func DecCounts(dst []IDCount, ids []uint32) []IDCount {
	if len(ids) == 0 {
		return dst
	}
	j := 0
	w := 0
	for i := 0; i < len(dst); i++ {
		e := dst[i]
		for j < len(ids) && ids[j] < e.ID {
			j++
		}
		if j < len(ids) && ids[j] == e.ID {
			e.N--
			j++
		}
		if e.N > 0 {
			dst[w] = e
			w++
		}
	}
	return dst[:w]
}
