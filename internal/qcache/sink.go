// The cache invalidator: a stream.ResultSink that turns every
// alignment publish into the minimal set of group bumps.
//
// The unit of staleness is the *integrated* story: a cached /api/search
// page embeds whole integrated stories, so any change to any member, or
// to the membership itself, must invalidate every symbol the integrated
// story touches — including symbols of members whose own Gen did not
// move (a story "stolen" into another component changes both
// components' rendered pages without either unchanged member mutating).
// To detect that, the sink fingerprints each member's integrated story
// as a commutative hash over (memberID, Gen) of ALL members, and keeps
// the integrated story's full symbol-group bitmap per member. A publish
// where every fingerprint is unchanged bumps nothing.
package qcache

import (
	"sync"

	"repro/internal/align"
	"repro/internal/event"
	"repro/internal/vocab"
)

// memberState is what the sink remembers about one per-source story:
// the fingerprint of the integrated story it belonged to at the last
// publish, and that integrated story's symbol groups.
type memberState struct {
	intKey uint64
	bits   Bits
}

// ownState caches a story's own symbol groups keyed by Gen, so an
// unchanged story costs one map lookup per publish instead of a walk
// over its entity and centroid vectors.
type ownState struct {
	gen  uint64
	bits Bits
}

// Sink subscribes a Cache to an engine's alignment publishes (attach
// with stream.Engine.AddResultSink, AFTER the index's primary slot so
// bumps never precede the index state they describe). One Sink belongs
// to one engine: when the pipeline is rebuilt, create a fresh Sink for
// the new engine and BumpAll the cache — a stale sink's bookkeeping
// only ever produces conservative extra bumps, but its absence of
// state must not be mistaken for an absence of change.
type Sink struct {
	c *Cache

	// mu serialises Publish (the engine already does, under its own
	// mutex, but the sink must also stay safe if an orphaned engine
	// publishes concurrently with its replacement's sink).
	mu      sync.Mutex
	members map[event.StoryID]memberState
	own     map[event.StoryID]ownState
	live    map[event.StoryID]bool // scratch, reused across publishes
}

// NewSink creates an invalidator feeding c.
func NewSink(c *Cache) *Sink {
	return &Sink{
		c:       c,
		members: make(map[event.StoryID]memberState),
		own:     make(map[event.StoryID]ownState),
		live:    make(map[event.StoryID]bool),
	}
}

// Publish implements stream.ResultSink.
func (s *Sink) Publish(res *align.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var acc Bits
	clear(s.live)
	for _, is := range res.Integrated {
		// Fingerprint and symbol groups of the whole integrated story,
		// computed once and attributed to every member. The fingerprint
		// is order-independent (members are sorted, but cheap insurance)
		// and covers both membership and every member's Gen.
		var sum, xor uint64
		var ibits Bits
		for _, m := range is.Members {
			h := mixSink(uint64(m.ID)*0x9E3779B97F4A7C15 ^ m.Gen())
			sum += h
			xor ^= h
			ibits = ibits.Or(s.ownBits(m))
		}
		intKey := mixSink(sum ^ (xor * 0xD6E8FEB86659FD93))

		for _, m := range is.Members {
			s.live[m.ID] = true
			old, seen := s.members[m.ID]
			switch {
			case !seen:
				acc = acc.Or(ibits)
			case old.intKey != intKey:
				// Changed content or changed membership: both the old
				// and the new renderings are affected.
				acc = acc.Or(old.bits).Or(ibits)
			}
			s.members[m.ID] = memberState{intKey: intKey, bits: ibits}
		}
	}
	// Members that vanished (RemoveSource, identifier repair): their
	// old pages are stale.
	for id, st := range s.members {
		if !s.live[id] {
			acc = acc.Or(st.bits)
			delete(s.members, id)
			delete(s.own, id)
		}
	}
	s.c.Bump(acc)
}

// ownBits returns the symbol groups of one story, cached per Gen.
func (s *Sink) ownBits(m *event.Story) Bits {
	if st, ok := s.own[m.ID]; ok && st.gen == m.Gen() {
		return st.bits
	}
	var b Bits
	for _, ec := range m.EntityFreq {
		b.Set(groupOf(kindEntity, vocab.Entities.String(ec.ID)))
	}
	for _, tw := range m.Centroid {
		b.Set(groupOf(kindTerm, vocab.Terms.String(tw.ID)))
	}
	s.own[m.ID] = ownState{gen: m.Gen(), bits: b}
	return b
}

// mixSink is splitmix64's finalizer: a cheap bijective scrambler so
// structured (ID, Gen) pairs spread over the full hash space before
// the commutative sum/xor combine.
func mixSink(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
