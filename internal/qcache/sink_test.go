package qcache

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/align"
	"repro/internal/event"
)

// mkStory builds a per-source story from one snippet carrying the
// given entity and term.
func mkStory(id event.StoryID, src event.SourceID, snID event.SnippetID, entity, term string) *event.Story {
	st := event.NewStory(id, src)
	st.Add(mkSnippet(snID, src, entity, term))
	return st
}

func mkSnippet(id event.SnippetID, src event.SourceID, entity, term string) *event.Snippet {
	s := &event.Snippet{
		ID:        id,
		Source:    src,
		Timestamp: time.Unix(int64(1000+id), 0),
		Entities:  []event.Entity{event.Entity(entity)},
		Terms:     []event.Term{{Token: term, Weight: 1}},
	}
	s.Intern()
	return s
}

func result(iss ...*event.IntegratedStory) *align.Result {
	return &align.Result{Integrated: iss}
}

// putFor caches an entry depending on one entity and returns its key.
func putFor(c *Cache, ent string) string {
	key := Key("timeline", ent, 0, 10)
	var d Deps
	d.AddEntity(ent)
	c.Put(key, c.Begin(d), []byte(ent), ETagFor([]byte(ent)))
	return key
}

func mustHit(t *testing.T, c *Cache, key, why string) {
	t.Helper()
	if _, _, ok := c.Get(key); !ok {
		t.Fatalf("%s: entry for %q gone", why, key)
	}
}

func mustMiss(t *testing.T, c *Cache, key, why string) {
	t.Helper()
	if _, _, ok := c.Get(key); ok {
		t.Fatalf("%s: entry for %q still served", why, key)
	}
}

func TestSinkUnchangedPublishBumpsNothing(t *testing.T) {
	ents := distinctEntities(t, 2)
	c := New(Config{SweepInterval: -1})
	sink := NewSink(c)

	a := mkStory(1, "s1", 1, ents[0], "alpha")
	b := mkStory(2, "s2", 2, ents[1], "beta")
	res := result(
		event.NewIntegratedStory(1, []*event.Story{a}),
		event.NewIntegratedStory(2, []*event.Story{b}),
	)
	sink.Publish(res) // first sight: bumps, cache still empty

	ka := putFor(c, ents[0])
	kb := putFor(c, ents[1])

	// Re-publishing the identical result (same Gens, same membership)
	// must leave both entries alone.
	sink.Publish(res)
	mustHit(t, c, ka, "unchanged publish")
	mustHit(t, c, kb, "unchanged publish")
}

func TestSinkGenChangeInvalidatesOnlyTouchedGroups(t *testing.T) {
	ents := distinctEntities(t, 3)
	c := New(Config{SweepInterval: -1})
	sink := NewSink(c)

	a := mkStory(1, "s1", 1, ents[0], "alpha")
	b := mkStory(2, "s2", 2, ents[1], "beta")
	sink.Publish(result(
		event.NewIntegratedStory(1, []*event.Story{a}),
		event.NewIntegratedStory(2, []*event.Story{b}),
	))

	ka := putFor(c, ents[0])
	kb := putFor(c, ents[1])
	kc := putFor(c, ents[2]) // depends on an entity no story mentions

	// Mutate story a (Gen advances), republish.
	a.Add(mkSnippet(3, "s1", ents[0], "gamma"))
	sink.Publish(result(
		event.NewIntegratedStory(1, []*event.Story{a}),
		event.NewIntegratedStory(2, []*event.Story{b}),
	))

	mustMiss(t, c, ka, "story a changed")
	mustHit(t, c, kb, "story b untouched")
	mustHit(t, c, kc, "entity never mentioned")
}

func TestSinkMembershipChangeWithoutGenChange(t *testing.T) {
	// The "steal" scenario: story b moves from integrated story Y into
	// X. Neither a's nor b's own Gen changes, but pages naming either
	// component's entities are stale.
	ents := distinctEntities(t, 3)
	c := New(Config{SweepInterval: -1})
	sink := NewSink(c)

	a := mkStory(1, "s1", 1, ents[0], "alpha")
	b := mkStory(2, "s2", 2, ents[1], "beta")
	sink.Publish(result(
		event.NewIntegratedStory(1, []*event.Story{a}),
		event.NewIntegratedStory(2, []*event.Story{b}),
	))

	ka := putFor(c, ents[0])
	kb := putFor(c, ents[1])
	kc := putFor(c, ents[2])

	// Same stories, same Gens — but now one merged component.
	sink.Publish(result(
		event.NewIntegratedStory(1, []*event.Story{a, b}),
	))

	mustMiss(t, c, ka, "a's component gained a member")
	mustMiss(t, c, kb, "b joined another component")
	mustHit(t, c, kc, "unrelated entity")
}

func TestSinkRemovalInvalidates(t *testing.T) {
	ents := distinctEntities(t, 2)
	c := New(Config{SweepInterval: -1})
	sink := NewSink(c)

	a := mkStory(1, "s1", 1, ents[0], "alpha")
	b := mkStory(2, "s2", 2, ents[1], "beta")
	sink.Publish(result(
		event.NewIntegratedStory(1, []*event.Story{a}),
		event.NewIntegratedStory(2, []*event.Story{b}),
	))

	ka := putFor(c, ents[0])
	kb := putFor(c, ents[1])

	// RemoveSource s1: story a vanishes from the next publish.
	sink.Publish(result(
		event.NewIntegratedStory(2, []*event.Story{b}),
	))

	mustMiss(t, c, ka, "a's source removed")
	mustHit(t, c, kb, "b untouched")
}

func TestSinkManyStoriesScale(t *testing.T) {
	// Sanity: many integrated stories, repeated unchanged publishes,
	// then one mutation — the sink's per-Gen own-bits cache must not
	// degrade correctness.
	c := New(Config{SweepInterval: -1})
	sink := NewSink(c)

	var iss []*event.IntegratedStory
	var stories []*event.Story
	for i := 0; i < 200; i++ {
		st := mkStory(event.StoryID(i+1), "src", event.SnippetID(i+1),
			fmt.Sprintf("bulk_entity_%d", i), fmt.Sprintf("bulkterm%d", i))
		stories = append(stories, st)
		iss = append(iss, event.NewIntegratedStory(event.IntegratedID(i+1), []*event.Story{st}))
	}
	sink.Publish(result(iss...))
	key := putFor(c, "bulk_entity_7")
	for i := 0; i < 5; i++ {
		sink.Publish(result(iss...))
	}
	mustHit(t, c, key, "repeated unchanged publishes")

	stories[7].Add(mkSnippet(9999, "src", "bulk_entity_7", "fresh"))
	sink.Publish(result(iss...))
	mustMiss(t, c, key, "story 7 mutated")
}
