// Package qcache is the query-result cache: a sharded, expiring map
// from (endpoint, query, offset, limit) to the encoded response bytes
// and their ETag, invalidated by the same Gen-delta publishes that
// maintain internal/index. Stories' entity and term symbols are hashed
// into numGroups invalidation groups, each with a version stamp; an entry
// remembers which groups its query depends on and the global stamp at
// which its computation began, and is valid only while none of those
// groups (nor the coarse epoch) was bumped past that stamp. Publishes
// whose stories' Gens did not change bump nothing, so a quiet engine
// serves hits indefinitely (until TTL); a publish that changes stories
// bumps only the groups their integrated stories' symbols hash into.
//
// Correctness protocol (the part the differential suite proves): a
// caller must capture its Token with Begin BEFORE reading the index
// and encode the result, then Put. Any publish that lands between
// Begin and Put bumps a dep group past the token's stamp, so the entry
// is stored already-invalid — conservatively wasted work, never a
// stale read. Get re-validates the stored token on every lookup.
package qcache

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Inline FNV-64a (hash/fnv hands out its state behind an interface,
// which heap-allocates on every call — this package hashes on the
// cache-hit path, which TestCacheHitAllocs pins).
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

func fnv64aString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime64
	}
	return h
}

func fnv64aByte(h uint64, b byte) uint64 {
	h ^= uint64(b)
	h *= fnvPrime64
	return h
}

var (
	metHits          = obs.GetCounter("storypivot_cache_hits_total", "query-cache lookups served from a valid entry")
	metMisses        = obs.GetCounter("storypivot_cache_misses_total", "query-cache lookups that found no valid entry")
	metInvalidations = obs.GetCounter("storypivot_cache_invalidations_total", "query-cache entries dropped because a dependency group was bumped")
	metEvictions     = obs.GetCounter("storypivot_cache_evictions_total", "query-cache entries dropped by TTL expiry or capacity pressure")
)

// numGroups is the invalidation-group fan-out. It must comfortably
// exceed the active symbol universe a single alignment delta touches:
// one changed integrated story carries every distinct entity and term
// of all its members (easily hundreds of symbols), and a batched
// publish carries several such stories. At 4096 groups (a 512-byte
// bitmap) a realistic delta bumps a few percent of the space, so
// queries over untouched symbols keep their entries; at 256 the same
// delta saturates half the space and the coarse-epoch fallback would
// flush the whole cache on every batch.
const numGroups = 4096

// Bits is a set of invalidation groups.
type Bits [numGroups / 64]uint64

// Set adds group g.
func (b *Bits) Set(g uint16) { b[g>>6] |= 1 << (g & 63) }

// Or returns the union.
func (b Bits) Or(o Bits) Bits {
	for i := range b {
		b[i] |= o[i]
	}
	return b
}

// Count returns the number of set groups.
func (b Bits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// Any reports whether any group is set.
func (b Bits) Any() bool {
	var or uint64
	for _, w := range b {
		or |= w
	}
	return or != 0
}

// Symbol kinds. Entities and terms are distinct vocab namespaces
// (vocab.Entities vs vocab.Terms), so the group hash must separate
// them too: entity "ukraine" and term "ukraine" land in independent
// groups.
const (
	kindEntity = 'e'
	kindTerm   = 't'
)

// groupOf hashes a symbol STRING (not its vocab ID) into a group, so
// the dependency side can hash query tokens that were never interned:
// when the symbol later appears in a story, the bump side hashes the
// same string and hits the same group.
func groupOf(kind byte, sym string) uint16 {
	return uint16(fnv64aString(fnv64aByte(fnvOffset64, kind), sym) % numGroups)
}

// GroupOfEntity exposes the entity-group hash (tests only).
func GroupOfEntity(name string) uint16 { return groupOf(kindEntity, name) }

// Deps is the dependency set of one cached response.
type Deps struct {
	bits Bits
	all  bool
}

// AddEntity declares a dependency on an entity symbol.
func (d *Deps) AddEntity(name string) { d.bits.Set(groupOf(kindEntity, name)) }

// AddTerm declares a dependency on a term symbol (callers pass the
// same processed token form the index matches on, i.e. the output of
// text.Pipeline).
func (d *Deps) AddTerm(tok string) { d.bits.Set(groupOf(kindTerm, tok)) }

// AddAll declares a dependency on every published change (wildcard for
// responses derived from the whole result set).
func (d *Deps) AddAll() { d.all = true }

// Token is the validity witness of one cached computation: the
// dependency set plus the global bump-clock value at Begin time.
type Token struct {
	deps  Deps
	stamp uint64
}

type entry struct {
	body    []byte
	etag    string
	tok     Token
	expires int64 // unixnano; 0 = never
}

type cshard struct {
	mu sync.RWMutex
	m  map[string]*entry
}

// Config sizes a Cache. Zero values pick the defaults.
type Config struct {
	// Shards is rounded up to a power of two (default 16).
	Shards int
	// MaxEntries caps the total entry count (default 4096; <0 = no cap).
	MaxEntries int
	// TTL bounds entry age regardless of invalidation (default 30s;
	// <0 = no expiry).
	TTL time.Duration
	// SweepInterval is the background expiry sweep period (default
	// TTL/2; <0 disables the sweeper).
	SweepInterval time.Duration
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 16
	}
	n := 1
	for n < c.Shards {
		n <<= 1
	}
	c.Shards = n
	if c.MaxEntries == 0 {
		c.MaxEntries = 4096
	}
	if c.TTL == 0 {
		c.TTL = 30 * time.Second
	}
	if c.SweepInterval == 0 && c.TTL > 0 {
		c.SweepInterval = c.TTL / 2
	}
	return c
}

// Cache is the sharded result cache. Safe for concurrent use.
type Cache struct {
	cfg      Config
	perShard int // max entries per shard, <=0 = uncapped
	shards   []*cshard

	// clock hands out bump ordinals; vers[g] holds the ordinal of
	// group g's latest bump, epoch the ordinal of the latest coarse
	// invalidation, anyVer the ordinal of the latest bump of any kind.
	// An entry begun at stamp s is valid while every version it
	// depends on is <= s.
	clock  atomic.Uint64
	vers   [numGroups]atomic.Uint64
	epoch  atomic.Uint64
	anyVer atomic.Uint64

	now func() time.Time

	// Sweeper lifecycle, mirroring the index compactor: lifeMu makes
	// StartSweeper/Close safe to call in any order and at most one
	// sweeper run.
	lifeMu   sync.Mutex
	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}
}

// New creates a cache. Call Close when done if StartSweeper was used.
func New(cfg Config) *Cache {
	cfg = cfg.withDefaults()
	c := &Cache{
		cfg:    cfg,
		shards: make([]*cshard, cfg.Shards),
		now:    time.Now,
		stopCh: make(chan struct{}),
	}
	if cfg.MaxEntries > 0 {
		c.perShard = (cfg.MaxEntries + cfg.Shards - 1) / cfg.Shards
		if c.perShard < 1 {
			c.perShard = 1
		}
	}
	for i := range c.shards {
		c.shards[i] = &cshard{m: make(map[string]*entry)}
	}
	return c
}

// SetNow overrides the clock (tests only).
func (c *Cache) SetNow(now func() time.Time) { c.now = now }

// Key builds the canonical cache key for a paged endpoint query.
func Key(endpoint, query string, offset, limit int) string {
	return fmt.Sprintf("%s\x00%s\x00%d\x00%d", endpoint, query, offset, limit)
}

func (c *Cache) shardFor(key string) *cshard {
	h := fnv64aString(fnvOffset64, key)
	return c.shards[int(h)&(len(c.shards)-1)]
}

// Begin captures the validity token for a computation about to start.
// It MUST be called before the caller reads the index; see the package
// comment for why the order matters.
func (c *Cache) Begin(deps Deps) Token {
	return Token{deps: deps, stamp: c.clock.Load()}
}

// valid reports whether no dependency of tok was bumped past its stamp.
func (c *Cache) valid(tok Token) bool {
	if c.epoch.Load() > tok.stamp {
		return false
	}
	if tok.deps.all {
		return c.anyVer.Load() <= tok.stamp
	}
	for i, w := range tok.deps.bits {
		for w != 0 {
			g := i<<6 + bits.TrailingZeros64(w)
			if c.vers[g].Load() > tok.stamp {
				return false
			}
			w &= w - 1
		}
	}
	return true
}

// Get returns the cached body and ETag for key if a fresh, valid entry
// exists. The returned body is shared — callers must not mutate it.
func (c *Cache) Get(key string) (body []byte, etag string, ok bool) {
	sh := c.shardFor(key)
	sh.mu.RLock()
	e := sh.m[key]
	sh.mu.RUnlock()
	if e == nil {
		metMisses.Inc()
		return nil, "", false
	}
	if e.expires != 0 && c.now().UnixNano() > e.expires {
		c.deleteIf(sh, key, e)
		metEvictions.Inc()
		metMisses.Inc()
		return nil, "", false
	}
	if !c.valid(e.tok) {
		c.deleteIf(sh, key, e)
		metInvalidations.Inc()
		metMisses.Inc()
		return nil, "", false
	}
	metHits.Inc()
	return e.body, e.etag, true
}

// Put stores an encoded response under key. A token whose dependencies
// were bumped since Begin is dropped on the floor: the result may
// reflect a pre-bump index read, and storing it could serve staleness.
func (c *Cache) Put(key string, tok Token, body []byte, etag string) {
	if !c.valid(tok) {
		return
	}
	e := &entry{body: body, etag: etag, tok: tok}
	if c.cfg.TTL > 0 {
		e.expires = c.now().Add(c.cfg.TTL).UnixNano()
	}
	sh := c.shardFor(key)
	sh.mu.Lock()
	if _, exists := sh.m[key]; !exists && c.perShard > 0 && len(sh.m) >= c.perShard {
		c.evictOneLocked(sh)
	}
	sh.m[key] = e
	sh.mu.Unlock()
}

// evictOneLocked frees one slot, preferring an entry that is already
// dead (expired or invalidated) over a live one.
func (c *Cache) evictOneLocked(sh *cshard) {
	now := c.now().UnixNano()
	var victim string
	found := false
	for k, e := range sh.m {
		if (e.expires != 0 && now > e.expires) || !c.valid(e.tok) {
			victim, found = k, true
			break
		}
		if !found {
			victim, found = k, true // fallback: arbitrary live entry
		}
	}
	if found {
		delete(sh.m, victim)
		metEvictions.Inc()
	}
}

func (c *Cache) deleteIf(sh *cshard, key string, e *entry) {
	sh.mu.Lock()
	if sh.m[key] == e {
		delete(sh.m, key)
	}
	sh.mu.Unlock()
}

// Bump invalidates every entry depending on any group in b. When more
// than half the groups are touched at once the coarse epoch is bumped
// instead — one store instead of 128+, same conservative effect.
func (c *Cache) Bump(b Bits) {
	if !b.Any() {
		return
	}
	stamp := c.clock.Add(1)
	if b.Count() > numGroups/2 {
		c.epoch.Store(stamp)
	} else {
		for i, w := range b {
			for w != 0 {
				g := i<<6 + bits.TrailingZeros64(w)
				c.vers[g].Store(stamp)
				w &= w - 1
			}
		}
	}
	c.anyVer.Store(stamp)
}

// BumpAll invalidates everything (pipeline rebuild, corpus reload,
// engine rebind — any event after which per-group accounting restarts
// from scratch).
func (c *Cache) BumpAll() {
	stamp := c.clock.Add(1)
	c.epoch.Store(stamp)
	c.anyVer.Store(stamp)
}

// Len returns the current entry count (tests and debug).
func (c *Cache) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// sweep removes expired and invalidated entries.
func (c *Cache) sweep() {
	now := c.now().UnixNano()
	for _, sh := range c.shards {
		sh.mu.Lock()
		for k, e := range sh.m {
			switch {
			case e.expires != 0 && now > e.expires:
				delete(sh.m, k)
				metEvictions.Inc()
			case !c.valid(e.tok):
				delete(sh.m, k)
				metInvalidations.Inc()
			}
		}
		sh.mu.Unlock()
	}
}

// StartSweeper runs the expiry sweep every cfg.SweepInterval until
// Close. Calling it more than once, or after Close, is a no-op.
func (c *Cache) StartSweeper() {
	c.lifeMu.Lock()
	defer c.lifeMu.Unlock()
	select {
	case <-c.stopCh:
		return // already closed
	default:
	}
	if c.done != nil || c.cfg.SweepInterval <= 0 {
		return
	}
	c.done = make(chan struct{})
	go func() {
		defer close(c.done)
		t := time.NewTicker(c.cfg.SweepInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				c.sweep()
			case <-c.stopCh:
				return
			}
		}
	}()
}

// Close stops the sweeper (idempotent).
func (c *Cache) Close() {
	c.lifeMu.Lock()
	defer c.lifeMu.Unlock()
	c.stopOnce.Do(func() { close(c.stopCh) })
	if c.done != nil {
		<-c.done
		c.done = nil
	}
}

// ETagFor computes the strong entity tag for an encoded body: a quoted
// FNV-64a digest. Equal bodies — the only thing the coherence suite
// permits for equal tags — always produce equal tags.
func ETagFor(body []byte) string {
	h := uint64(fnvOffset64)
	for _, b := range body {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return fmt.Sprintf("\"%016x\"", h)
}
