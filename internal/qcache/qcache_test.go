package qcache

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// distinctEntities returns n entity names guaranteed to hash into n
// distinct invalidation groups, so tests can reason about cross-talk
// precisely.
func distinctEntities(t *testing.T, n int) []string {
	t.Helper()
	used := make(map[uint16]bool)
	var out []string
	for i := 0; len(out) < n && i < 10000; i++ {
		name := fmt.Sprintf("entity_%d", i)
		g := GroupOfEntity(name)
		if !used[g] {
			used[g] = true
			out = append(out, name)
		}
	}
	if len(out) < n {
		t.Fatalf("could not find %d group-distinct entities", n)
	}
	return out
}

func TestKeyDistinct(t *testing.T) {
	keys := map[string]bool{
		Key("search", "a b", 0, 10):    true,
		Key("search", "a", 0, 10):      true,
		Key("search", "a b", 10, 10):   true,
		Key("search", "a b", 0, 20):    true,
		Key("timeline", "a b", 0, 10):  true,
		Key("search", "a\x00b", 0, 10): true,
	}
	if len(keys) != 6 {
		t.Fatalf("key collisions: %d distinct of 6", len(keys))
	}
}

func TestETagFor(t *testing.T) {
	a := ETagFor([]byte(`{"x":1}`))
	b := ETagFor([]byte(`{"x":1}`))
	c := ETagFor([]byte(`{"x":2}`))
	if a != b {
		t.Fatalf("equal bodies, different tags: %s vs %s", a, b)
	}
	if a == c {
		t.Fatalf("different bodies, equal tags: %s", a)
	}
	if a[0] != '"' || a[len(a)-1] != '"' {
		t.Fatalf("ETag not quoted: %s", a)
	}
}

func TestHitMissAndTTL(t *testing.T) {
	c := New(Config{TTL: time.Second, SweepInterval: -1})
	now := time.Unix(1000, 0)
	c.SetNow(func() time.Time { return now })

	key := Key("search", "q", 0, 10)
	if _, _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	var d Deps
	d.AddTerm("q")
	tok := c.Begin(d)
	c.Put(key, tok, []byte("body"), `"etag"`)
	body, etag, ok := c.Get(key)
	if !ok || string(body) != "body" || etag != `"etag"` {
		t.Fatalf("Get = %q, %q, %v", body, etag, ok)
	}
	// TTL expiry.
	now = now.Add(2 * time.Second)
	if _, _, ok := c.Get(key); ok {
		t.Fatal("hit on expired entry")
	}
	if c.Len() != 0 {
		t.Fatalf("expired entry not dropped: len=%d", c.Len())
	}
}

func TestBumpInvalidatesOnlyDependents(t *testing.T) {
	ents := distinctEntities(t, 3)
	c := New(Config{SweepInterval: -1})

	put := func(key, ent string) {
		var d Deps
		d.AddEntity(ent)
		c.Put(key, c.Begin(d), []byte(key), ETagFor([]byte(key)))
	}
	put("k0", ents[0])
	put("k1", ents[1])

	var hit Bits
	hit.Set(GroupOfEntity(ents[0]))
	c.Bump(hit)

	if _, _, ok := c.Get("k0"); ok {
		t.Fatal("entry survived a bump of its dependency group")
	}
	if _, _, ok := c.Get("k1"); !ok {
		t.Fatal("unrelated entry was invalidated")
	}
	// The third entity's group was never bumped: entries put BEFORE the
	// bump with that dep are still valid.
	put("k2", ents[2])
	if _, _, ok := c.Get("k2"); !ok {
		t.Fatal("fresh entry invalid")
	}
}

func TestBeginBeforeBumpIsConservative(t *testing.T) {
	ents := distinctEntities(t, 1)
	c := New(Config{SweepInterval: -1})
	var d Deps
	d.AddEntity(ents[0])
	tok := c.Begin(d)
	// A publish lands between Begin and Put: the computation may have
	// read the pre-publish index, so the entry must never be served.
	var b Bits
	b.Set(GroupOfEntity(ents[0]))
	c.Bump(b)
	c.Put("k", tok, []byte("maybe stale"), `"t"`)
	if _, _, ok := c.Get("k"); ok {
		t.Fatal("entry computed before an overlapping bump was served")
	}
	if c.Len() != 0 {
		t.Fatal("known-stale entry was stored")
	}
}

func TestWildcardAndEpoch(t *testing.T) {
	ents := distinctEntities(t, 2)
	c := New(Config{SweepInterval: -1})

	var all Deps
	all.AddAll()
	c.Put("any", c.Begin(all), []byte("x"), `"t"`)
	var one Bits
	one.Set(GroupOfEntity(ents[0]))
	c.Bump(one)
	if _, _, ok := c.Get("any"); ok {
		t.Fatal("wildcard entry survived a bump")
	}

	var d Deps
	d.AddEntity(ents[1])
	c.Put("narrow", c.Begin(d), []byte("y"), `"t"`)
	c.BumpAll()
	if _, _, ok := c.Get("narrow"); ok {
		t.Fatal("entry survived BumpAll")
	}
}

func TestWideBumpUsesEpoch(t *testing.T) {
	c := New(Config{SweepInterval: -1})
	var d Deps
	d.AddTerm("somewhere")
	c.Put("k", c.Begin(d), []byte("x"), `"t"`)
	// Bump more than half the groups at once: the epoch path must kill
	// everything, including deps whose own group bit wasn't in the set.
	var wide Bits
	for g := 0; g < numGroups*3/4; g++ {
		wide.Set(uint16(g))
	}
	c.Bump(wide)
	if _, _, ok := c.Get("k"); ok {
		t.Fatal("entry survived a wide (epoch) bump")
	}
}

func TestCapacityEviction(t *testing.T) {
	c := New(Config{Shards: 1, MaxEntries: 4, SweepInterval: -1})
	var d Deps
	d.AddTerm("t")
	for i := 0; i < 20; i++ {
		key := Key("search", fmt.Sprintf("q%d", i), 0, 10)
		c.Put(key, c.Begin(d), []byte("x"), `"t"`)
	}
	if n := c.Len(); n > 4 {
		t.Fatalf("cache over capacity: %d entries, cap 4", n)
	}
}

func TestSweepRemovesExpiredAndInvalid(t *testing.T) {
	ents := distinctEntities(t, 2)
	c := New(Config{TTL: time.Second, SweepInterval: -1})
	now := time.Unix(1000, 0)
	c.SetNow(func() time.Time { return now })

	var d0, d1 Deps
	d0.AddEntity(ents[0])
	d1.AddEntity(ents[1])
	c.Put("expired", c.Begin(d0), []byte("x"), `"t"`)
	c.Put("invalid", c.Begin(d1), []byte("y"), `"t"`)

	now = now.Add(2 * time.Second) // "expired" ages out
	var b Bits
	b.Set(GroupOfEntity(ents[1])) // "invalid" loses its dep
	c.Bump(b)

	// Re-add a live entry after the bump.
	c.SetNow(func() time.Time { return now })
	c.Put("live", c.Begin(d1), []byte("z"), `"t"`)

	c.sweep()
	if c.Len() != 1 {
		t.Fatalf("after sweep: %d entries, want 1 (live)", c.Len())
	}
	if _, _, ok := c.Get("live"); !ok {
		t.Fatal("live entry swept")
	}
}

func TestSweeperLifecycle(t *testing.T) {
	c := New(Config{TTL: 10 * time.Millisecond, SweepInterval: 5 * time.Millisecond})
	var d Deps
	d.AddTerm("x")
	c.Put("k", c.Begin(d), []byte("x"), `"t"`)
	c.StartSweeper()
	c.StartSweeper() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for c.Len() != 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if c.Len() != 0 {
		t.Fatal("sweeper never removed the expired entry")
	}
	c.Close()
	c.Close()        // idempotent
	c.StartSweeper() // after Close: no-op, no panic
}

func TestConcurrentUse(t *testing.T) {
	ents := distinctEntities(t, 8)
	c := New(Config{MaxEntries: 64, SweepInterval: -1})
	defer c.Close()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ent := ents[w]
			var d Deps
			d.AddEntity(ent)
			var b Bits
			b.Set(GroupOfEntity(ent))
			for i := 0; i < 500; i++ {
				key := Key("search", ent, 0, 10)
				if body, _, ok := c.Get(key); ok {
					if string(body) != ent {
						t.Errorf("cross-tenant body: got %q want %q", body, ent)
					}
				} else {
					c.Put(key, c.Begin(d), []byte(ent), `"t"`)
				}
				if i%50 == 0 {
					c.Bump(b)
				}
				if i%100 == 0 {
					c.sweep()
				}
			}
		}(w)
	}
	wg.Wait()
}
