package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// --- concurrency invariants ------------------------------------------------

func TestCounterParallelSum(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_parallel_total", "")
	const workers, perWorker = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if i%2 == 0 {
					c.Inc()
				} else {
					c.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if got := c.Value(); got != workers*perWorker {
		t.Fatalf("parallel increments lost: got %d want %d", got, workers*perWorker)
	}
}

func TestGaugeParallel(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("test_gauge", "")
	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Fatalf("balanced adds should net zero, got %d", got)
	}
	g.Set(42)
	if g.Value() != 42 {
		t.Fatal("Set lost")
	}
}

func TestHistogramParallelCountAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_hist_seconds", "")
	const workers, perWorker = 12, 4000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Deterministic spread over several buckets and stripes.
				h.Observe(time.Duration(1+(w*perWorker+i)%1000) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != workers*perWorker {
		t.Fatalf("count: got %d want %d", snap.Count, workers*perWorker)
	}
	var bucketTotal uint64
	for _, b := range snap.Buckets {
		bucketTotal += b
	}
	if bucketTotal != snap.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, snap.Count)
	}
	if snap.Sum <= 0 {
		t.Fatalf("sum not accumulated: %v", snap.Sum)
	}
}

func TestHistogramQuantilesMonotone(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_quant_seconds", "")
	// A skewed distribution across many buckets, observed concurrently.
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				d := time.Duration((i%97)*(w+1)) * time.Microsecond
				h.Observe(d)
			}
		}(w)
	}
	wg.Wait()
	snap := h.Snapshot()
	qs := []float64{0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 0.999}
	prev := time.Duration(-1)
	for _, q := range qs {
		v := snap.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotone: q=%g -> %v after %v", q, v, prev)
		}
		prev = v
	}
	if p50, p99 := snap.Quantile(0.5), snap.Quantile(0.99); p50 > p99 {
		t.Fatalf("p50 %v > p99 %v", p50, p99)
	}
}

func TestQuantileEmptyAndSingle(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_edge_seconds", "")
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram p50 = %v, want 0", got)
	}
	h.Observe(3 * time.Millisecond)
	snap := h.Snapshot()
	p50 := snap.Quantile(0.5)
	// One sample in the (2ms, 5ms] bucket: the estimate must land there.
	if p50 < 2*time.Millisecond || p50 > 5*time.Millisecond {
		t.Fatalf("p50 %v outside observed bucket", p50)
	}
}

func TestBucketIndexEdges(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{1 * time.Microsecond, 0},
		{1*time.Microsecond + 1, 1},
		{10 * time.Second, numBuckets - 2},
		{time.Minute, numBuckets - 1}, // overflow bucket
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

// Registration must be race-free get-or-create: all goroutines asking
// for the same name must receive the same instance.
func TestRegistryConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	const workers = 16
	got := make([]*Counter, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got[w] = r.Counter("same_name_total", "")
			got[w].Inc()
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		if got[w] != got[0] {
			t.Fatal("Counter get-or-create returned distinct instances")
		}
	}
	if got[0].Value() != workers {
		t.Fatalf("increments through aliases lost: %d", got[0].Value())
	}
}

func TestSpan(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_span_seconds", "")
	sp := h.Start()
	time.Sleep(2 * time.Millisecond)
	d := sp.End()
	if d < 2*time.Millisecond {
		t.Fatalf("span measured %v", d)
	}
	if h.Count() != 1 {
		t.Fatalf("span not recorded: count=%d", h.Count())
	}
	// A zero-value span (no histogram attached) must not panic.
	_ = Span{start: time.Now()}.End()
}

// --- exporters -------------------------------------------------------------

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("sp_test_ingested_total", "snippets ingested").Add(7)
	r.Gauge("sp_test_sources", "sources").Set(3)
	h := r.Histogram("sp_test_latency_seconds", "latency")
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i) * 100 * time.Microsecond)
	}
	var sb strings.Builder
	r.WritePrometheus(&sb)
	out := sb.String()

	for _, want := range []string{
		"# TYPE sp_test_ingested_total counter",
		"sp_test_ingested_total 7",
		"# TYPE sp_test_sources gauge",
		"sp_test_sources 3",
		"# TYPE sp_test_latency_seconds histogram",
		`sp_test_latency_seconds_bucket{le="+Inf"} 100`,
		"sp_test_latency_seconds_count 100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}

	// Cumulative buckets must be non-decreasing and end at count.
	var prev uint64
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "sp_test_latency_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseUint(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if v < prev {
			t.Fatalf("bucket counts not cumulative: %q after %d", line, prev)
		}
		prev = v
	}
	if prev != 100 {
		t.Fatalf("final cumulative bucket %d != count 100", prev)
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("sp_handler_total", "").Inc()
	req := httptest.NewRequest("GET", "/metrics", nil)
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, req)
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "sp_handler_total 1") {
		t.Fatalf("body missing counter:\n%s", rec.Body.String())
	}
}

func TestDebugMux(t *testing.T) {
	GetCounter("sp_debugmux_total", "").Inc()
	mux := DebugMux()

	for _, path := range []string{"/metrics", "/debug/vars", "/debug/pprof/"} {
		req := httptest.NewRequest("GET", path, nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != 200 {
			t.Fatalf("GET %s -> %d", path, rec.Code)
		}
	}

	// /debug/vars must include the registry snapshot under "storypivot".
	req := httptest.NewRequest("GET", "/debug/vars", nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(rec.Body.Bytes(), &vars); err != nil {
		t.Fatalf("expvar output not JSON: %v", err)
	}
	if _, ok := vars["storypivot"]; !ok {
		t.Fatal("expvar missing storypivot key")
	}
	var sp map[string]json.RawMessage
	if err := json.Unmarshal(vars["storypivot"], &sp); err != nil {
		t.Fatalf("storypivot expvar not an object: %v", err)
	}
	if _, ok := sp["sp_debugmux_total"]; !ok {
		t.Fatal("storypivot expvar missing registered counter")
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench_total", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds", "")
	b.RunParallel(func(pb *testing.PB) {
		d := time.Duration(0)
		for pb.Next() {
			d += 137
			h.Observe(d)
		}
	})
}
