// Package obs is StoryPivot's runtime observability substrate: a
// dependency-free metrics registry (atomic counters, gauges, and
// lock-striped latency histograms with quantile estimation) plus the
// Prometheus-text, expvar, and pprof exporters in export.go.
//
// The package exists so the statistics module's per-event numbers
// (paper Figure 7) are available *online* — from a live server under
// load — rather than only from offline internal/eval runs. Every hot
// path of the pipeline increments these metrics unconditionally; the
// instruments are single atomic operations (no locks, no allocation on
// the observe path), so leaving them on costs nanoseconds whether or
// not an exporter is attached.
//
// All metrics live in a Registry. Package-level constructors operate on
// Default, which the exporters serve; tests that need isolation create
// their own Registry.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds named metrics. Metrics are registered once (usually
// from package-level vars) and then updated lock-free; the registry
// lock is only taken on registration and snapshot, never on the
// observe path. A Registry is safe for concurrent use.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Default is the process-wide registry that the pipeline's
// instrumentation points register into and the exporters serve.
var Default = NewRegistry()

// Counter is a monotonically increasing uint64. The zero value is not
// usable; obtain counters from a Registry.
type Counter struct {
	name string
	help string
	v    atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Name returns the metric name.
func (c *Counter) Name() string { return c.name }

// Gauge is an instantaneous int64 value.
type Gauge struct {
	name string
	help string
	v    atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Name returns the metric name.
func (g *Gauge) Name() string { return g.name }

// Histogram bucket layout: a fixed 1-2-5 exponential ladder over
// latencies from 1µs to 10s. Durations are recorded in nanoseconds;
// bounds are exported in seconds per Prometheus convention.
var bucketBounds = []time.Duration{
	1 * time.Microsecond, 2 * time.Microsecond, 5 * time.Microsecond,
	10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
	100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
	1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
	10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
	100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
	1 * time.Second, 2 * time.Second, 5 * time.Second, 10 * time.Second,
}

const numBuckets = 23 // len(bucketBounds) + 1 overflow bucket

// histStripes must be a power of two; see stripeOf.
const histStripes = 8

// histStripe is one shard of a histogram. Each stripe sits on its own
// cache lines (the padding separates adjacent stripes) so concurrent
// observers that land on different stripes do not false-share.
type histStripe struct {
	count   atomic.Uint64
	sum     atomic.Int64 // nanoseconds
	buckets [numBuckets]atomic.Uint64
	_       [64]byte
}

// Histogram is a lock-striped latency histogram. Observe is wait-free:
// it picks a stripe by hashing the observed duration (timing values
// have high entropy in their low bits, so concurrent observers spread
// across stripes without any shared state) and performs three atomic
// adds. Snapshots aggregate the stripes.
type Histogram struct {
	name    string
	help    string
	stripes [histStripes]histStripe
}

// stripeOf maps a duration to a stripe with a Fibonacci multiplicative
// hash of its nanosecond value.
func stripeOf(d time.Duration) int {
	return int((uint64(d) * 0x9E3779B97F4A7C15) >> 59 & (histStripes - 1))
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s := &h.stripes[stripeOf(d)]
	s.count.Add(1)
	s.sum.Add(int64(d))
	s.buckets[bucketIndex(d)].Add(1)
}

// bucketIndex returns the index of the first bucket whose bound is >= d
// (the overflow bucket for anything beyond the ladder).
func bucketIndex(d time.Duration) int {
	// The ladder is tiny; a branch-predicted linear scan beats binary
	// search for the common (small-latency) case.
	for i, b := range bucketBounds {
		if d <= b {
			return i
		}
	}
	return numBuckets - 1
}

// Time runs fn and records its duration.
func (h *Histogram) Time(fn func()) {
	start := time.Now()
	fn()
	h.Observe(time.Since(start))
}

// Start begins a span; call End on the returned Span to record it.
func (h *Histogram) Start() Span { return Span{h: h, start: time.Now()} }

// Span is an in-flight timed section of a pipeline stage.
type Span struct {
	h     *Histogram
	start time.Time
}

// End records the elapsed time into the span's histogram and returns it.
func (s Span) End() time.Duration {
	d := time.Since(s.start)
	if s.h != nil {
		s.h.Observe(d)
	}
	return d
}

// Name returns the metric name.
func (h *Histogram) Name() string { return h.name }

// HistSnapshot is an aggregated view of a histogram.
type HistSnapshot struct {
	Count   uint64
	Sum     time.Duration
	Buckets [numBuckets]uint64 // non-cumulative, aligned with bucketBounds
}

// Snapshot aggregates the stripes. Stripes are read without a global
// lock, so a snapshot taken during concurrent observation is a
// near-point-in-time view: each individual stripe is internally
// consistent to within one in-flight observation.
func (h *Histogram) Snapshot() HistSnapshot {
	var out HistSnapshot
	for i := range h.stripes {
		s := &h.stripes[i]
		out.Count += s.count.Load()
		out.Sum += time.Duration(s.sum.Load())
		for j := range s.buckets {
			out.Buckets[j] += s.buckets[j].Load()
		}
	}
	return out
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.stripes {
		n += h.stripes[i].count.Load()
	}
	return n
}

// Quantile estimates the q-th quantile (0 < q < 1) from the bucket
// counts with linear interpolation inside the target bucket. Estimates
// from the same snapshot are monotone in q by construction. Returns 0
// when the histogram is empty.
func (s HistSnapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum uint64
	for i, n := range s.Buckets {
		if n == 0 {
			continue
		}
		prev := cum
		cum += n
		if float64(cum) >= rank {
			lo, hi := bucketEdges(i)
			// Interpolate by the rank's position inside this bucket.
			frac := (rank - float64(prev)) / float64(n)
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			return lo + time.Duration(frac*float64(hi-lo))
		}
	}
	return bucketBounds[len(bucketBounds)-1]
}

// bucketEdges returns the [lo, hi] duration range of bucket i. The
// overflow bucket is clamped to twice the last bound so interpolation
// stays finite.
func bucketEdges(i int) (lo, hi time.Duration) {
	if i == 0 {
		return 0, bucketBounds[0]
	}
	if i >= len(bucketBounds) {
		last := bucketBounds[len(bucketBounds)-1]
		return last, 2 * last
	}
	return bucketBounds[i-1], bucketBounds[i]
}

// Mean returns the mean observation, or 0 when empty.
func (s HistSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Registry accessors -------------------------------------------------------

// Counter returns the named counter, creating it if needed. Help text
// is recorded on first registration.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{name: name, help: help}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name, help string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{name: name, help: help}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it if needed.
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h == nil {
		h = &Histogram{name: name, help: help}
		r.histograms[name] = h
	}
	return h
}

// GetCounter returns the named counter from Default.
func GetCounter(name, help string) *Counter { return Default.Counter(name, help) }

// GetGauge returns the named gauge from Default.
func GetGauge(name, help string) *Gauge { return Default.Gauge(name, help) }

// GetHistogram returns the named histogram from Default.
func GetHistogram(name, help string) *Histogram { return Default.Histogram(name, help) }

// sortedNames returns the keys of m, sorted, so exports are
// deterministic.
func sortedNames[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// secondsBound renders a bucket bound in seconds for the Prometheus
// "le" label.
func secondsBound(d time.Duration) float64 {
	return float64(d) / float64(time.Second)
}

// isFinite guards against NaN leaking into exports (it cannot happen
// with the fixed ladder, but the exporter must never emit "NaN").
func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }
