package obs

import (
	"context"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync"
	"time"
)

// WritePrometheus renders every registered metric in the Prometheus
// text exposition format (version 0.0.4): counters and gauges as single
// samples, histograms as cumulative le-labelled buckets plus _sum and
// _count. Output is sorted by metric name so scrapes are deterministic.
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.histograms))
	for k, v := range r.histograms {
		hists[k] = v
	}
	r.mu.RUnlock()

	// Registered names may carry an inline label set ("foo{member=\"w0\"}"
	// — the registry's way of spelling per-entity series without a label
	// API). HELP/TYPE lines must name the bare metric family exactly
	// once, so strip the label clause and deduplicate; the sorted order
	// groups a family's series together.
	seenFamily := make(map[string]bool)
	meta := func(name, help, typ string) {
		fam := name
		if i := strings.IndexByte(fam, '{'); i >= 0 {
			fam = fam[:i]
		}
		if seenFamily[fam] {
			return
		}
		seenFamily[fam] = true
		if help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", fam, help)
		}
		fmt.Fprintf(w, "# TYPE %s %s\n", fam, typ)
	}
	for _, name := range sortedNames(counters) {
		c := counters[name]
		meta(name, c.help, "counter")
		fmt.Fprintf(w, "%s %d\n", name, c.Value())
	}
	for _, name := range sortedNames(gauges) {
		g := gauges[name]
		meta(name, g.help, "gauge")
		fmt.Fprintf(w, "%s %d\n", name, g.Value())
	}
	for _, name := range sortedNames(hists) {
		h := hists[name]
		snap := h.Snapshot()
		if h.help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, h.help)
		}
		fmt.Fprintf(w, "# TYPE %s histogram\n", name)
		var cum uint64
		for i, b := range bucketBounds {
			cum += snap.Buckets[i]
			bound := secondsBound(b)
			if !isFinite(bound) {
				continue
			}
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(bound), cum)
		}
		cum += snap.Buckets[numBuckets-1]
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		fmt.Fprintf(w, "%s_sum %g\n", name, secondsBound(snap.Sum))
		fmt.Fprintf(w, "%s_count %d\n", name, snap.Count)
	}
}

// formatBound renders a le bound without trailing zeros ("0.005", not
// "5e-03"), matching common Prometheus client output.
func formatBound(f float64) string {
	return trimZeros(fmt.Sprintf("%.9f", f))
}

func trimZeros(s string) string {
	i := len(s)
	for i > 0 && s[i-1] == '0' {
		i--
	}
	if i > 0 && s[i-1] == '.' {
		i--
	}
	return s[:i]
}

// Handler returns the /metrics endpoint for this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// vars is the expvar view of a registry: a JSON object with counters,
// gauges, and per-histogram {count, mean_ns, p50_ns, p95_ns, p99_ns}.
func (r *Registry) vars() interface{} {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]interface{}, len(r.counters)+len(r.gauges)+len(r.histograms))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.histograms {
		snap := h.Snapshot()
		out[name] = map[string]interface{}{
			"count":   snap.Count,
			"mean_ns": int64(snap.Mean()),
			"p50_ns":  int64(snap.Quantile(0.50)),
			"p95_ns":  int64(snap.Quantile(0.95)),
			"p99_ns":  int64(snap.Quantile(0.99)),
		}
	}
	return out
}

var publishOnce sync.Once

// PublishExpvar exposes the Default registry under the "storypivot"
// expvar key (served by expvar's /debug/vars handler). Safe to call any
// number of times; expvar registration is process-global, hence the
// once.
func PublishExpvar() {
	publishOnce.Do(func() {
		expvar.Publish("storypivot", expvar.Func(Default.vars))
	})
}

// DebugMux returns a mux exposing the full observability surface of the
// Default registry:
//
//	/metrics          Prometheus text format
//	/debug/vars       expvar JSON (includes the "storypivot" key)
//	/debug/pprof/...  runtime profiles
//
// Mount it on a dedicated listener (cmd flag --metrics-addr) or merge
// its routes into an existing mux.
func DebugMux() *http.ServeMux {
	PublishExpvar()
	mux := http.NewServeMux()
	mux.Handle("/metrics", Default.Handler())
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ServeDebug starts the debug mux on addr in a background goroutine and
// returns immediately; errors (e.g. the port being taken) are reported
// through the returned channel. It is the implementation behind the
// cmds' --metrics-addr flag.
//
// Deprecated-in-spirit: the listener cannot be stopped. New code should
// use StartDebug, which binds synchronously (so a taken port fails
// fast) and shuts down cleanly during process drain.
func ServeDebug(addr string) <-chan error {
	errc := make(chan error, 1)
	go func() {
		errc <- http.ListenAndServe(addr, DebugMux())
	}()
	return errc
}

// DebugServer is a running debug/metrics listener that participates in
// graceful shutdown.
type DebugServer struct {
	srv  *http.Server
	addr string
	errc chan error
}

// StartDebug binds addr and serves the debug mux on it in the
// background. Binding happens synchronously, so a taken port surfaces
// here rather than minutes later from a goroutine; runtime serve
// failures arrive on Err.
func StartDebug(addr string) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	d := &DebugServer{
		srv: &http.Server{
			Handler:           DebugMux(),
			ReadHeaderTimeout: 5 * time.Second,
			IdleTimeout:       2 * time.Minute,
		},
		addr: ln.Addr().String(),
		errc: make(chan error, 1),
	}
	go func() {
		err := d.srv.Serve(ln)
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		d.errc <- err
	}()
	return d, nil
}

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.addr }

// Err reports a serve failure (nil after a clean Shutdown).
func (d *DebugServer) Err() <-chan error { return d.errc }

// Shutdown stops the listener, letting in-flight scrapes finish until
// ctx expires.
func (d *DebugServer) Shutdown(ctx context.Context) error {
	return d.srv.Shutdown(ctx)
}
