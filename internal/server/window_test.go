package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	storypivot "repro"
	"repro/internal/retire"
)

func newWindowServer(t *testing.T) *httptest.Server {
	t.Helper()
	s, err := New(
		storypivot.WithRetireWindow(21*24*time.Hour),
		storypivot.WithRetireDir(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	s.Preload(demoDocs()...)
	if err := s.SelectAll(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func TestWindowEndpoint(t *testing.T) {
	ts := newWindowServer(t)

	var v retire.View
	getJSON(t, ts.URL+"/api/window", &v)
	if !v.Enabled || v.Window != "504h0m0s" {
		t.Fatalf("GET /api/window = %+v, want enabled 504h window", v)
	}

	// Healthz mirrors the window state.
	var hv HealthView
	getJSON(t, ts.URL+"/healthz", &hv)
	if hv.Window == nil || hv.Window.Window != v.Window {
		t.Fatalf("healthz window = %+v, want %q", hv.Window, v.Window)
	}

	// Live rebase through the admin endpoint.
	body, _ := json.Marshal(map[string]any{"window": "240h", "grace": "12h", "min_resident": 7})
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/api/admin/window", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT /api/admin/window = %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.Window != "240h0m0s" || v.Grace != "12h0m0s" || v.MinResident != 7 {
		t.Fatalf("rebased view = %+v", v)
	}
	// The rebase is durable in the live manager, not just echoed.
	getJSON(t, ts.URL+"/api/window", &v)
	if v.Window != "240h0m0s" || v.MinResident != 7 {
		t.Fatalf("GET after rebase = %+v", v)
	}

	// Invalid inputs answer 400 without changing state.
	for _, bad := range []string{
		`{"window": "not-a-duration"}`,
		`{"grace": "-5h"}`,
		`{"min_resident": -1}`,
		`{definitely not json`,
	} {
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/api/admin/window", bytes.NewReader([]byte(bad)))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("PUT %s = %d, want 400", bad, resp.StatusCode)
		}
	}
	getJSON(t, ts.URL+"/api/window", &v)
	if v.Window != "240h0m0s" || v.MinResident != 7 {
		t.Fatalf("state changed by rejected update: %+v", v)
	}
}

func TestWindowEndpointDisabled(t *testing.T) {
	_, ts := newTestServer(t) // no retirement options
	resp, err := http.Get(ts.URL + "/api/window")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /api/window without retirement = %d, want 404", resp.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/api/admin/window", bytes.NewReader([]byte(`{"window":"240h"}`)))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("PUT /api/admin/window without retirement = %d, want 404", resp.StatusCode)
	}
	// Healthz omits the window block entirely.
	var hv HealthView
	getJSON(t, ts.URL+"/healthz", &hv)
	if hv.Window != nil {
		t.Fatalf("healthz window = %+v, want omitted", hv.Window)
	}
}
