package server

import (
	"encoding/json"
	"net/http"

	"repro/internal/feed"
)

// FeedAssignPut is the PUT /api/cluster/feeds request: the router's
// feed coordinator declaring the complete set of sources this worker
// should be running. The list is authoritative — cluster-assigned
// runners absent from it are stopped (drained, or dropped for interim
// tenures); statically configured runners are never touched.
type FeedAssignPut struct {
	// Epoch fences stale coordinators: the worker remembers the highest
	// epoch it has applied and answers 409 (with that epoch) to anything
	// older, so a partitioned or restarted coordinator cannot roll the
	// worker back to an assignment the cluster has moved past.
	Epoch       uint64            `json:"epoch"`
	Assignments []feed.Assignment `json:"assignments"`
}

// FeedAssignView is the PUT/GET /api/cluster/feeds response: the
// worker's post-apply assignment state.
type FeedAssignView struct {
	Epoch   uint64                `json:"epoch"`
	Running []feed.AssignedStatus `json:"running"`
	Stopped map[string]string     `json:"stopped,omitempty"`
	Dropped []string              `json:"dropped,omitempty"`
}

func (s *Server) handleFeedAssignGet(w http.ResponseWriter, _ *http.Request) {
	m := s.feeds.Load()
	if m == nil {
		httpError(w, http.StatusNotFound, "no feed manager attached")
		return
	}
	writeJSON(w, FeedAssignView{
		Epoch:   s.feedEpoch.Load(),
		Running: m.Assigned(),
	})
}

func (s *Server) handleFeedAssignPut(w http.ResponseWriter, r *http.Request) {
	m := s.feeds.Load()
	if m == nil {
		httpError(w, http.StatusNotFound, "no feed manager attached")
		return
	}
	var req FeedAssignPut
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid assignment JSON: "+err.Error())
		return
	}
	// Epoch check and apply race only against other assignment PUTs, and
	// Assign serialises those internally; a stale writer losing the
	// check-then-apply race converges next round (the coordinator adopts
	// the higher epoch off the 409 and re-reconciles).
	if cur := s.feedEpoch.Load(); req.Epoch < cur {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(map[string]any{
			"error": "stale epoch",
			"epoch": cur,
		})
		return
	}
	res, err := m.Assign(req.Assignments)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	s.feedEpoch.Store(req.Epoch)
	writeJSON(w, FeedAssignView{
		Epoch:   req.Epoch,
		Running: res.Running,
		Stopped: res.Stopped,
		Dropped: res.Dropped,
	})
}
