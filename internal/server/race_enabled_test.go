//go:build race

package server

// raceEnabled reports whether the race detector is active. Allocation
// pins do not hold under -race (instrumentation allocates), so alloc
// tests skip themselves.
const raceEnabled = true
