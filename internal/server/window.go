package server

import (
	"encoding/json"
	"net/http"
	"time"

	"repro/internal/retire"
)

// WindowUpdate is the PUT /api/admin/window request body. Durations are
// strings in Go syntax ("72h", "90m"); absent fields keep their current
// value, mirroring the partial-update shape of the quota admin endpoint.
type WindowUpdate struct {
	Window      *string `json:"window"`
	Grace       *string `json:"grace"`
	MinResident *int    `json:"min_resident"`
}

// handleWindowGet exposes the retirement window state: policy, event-time
// watermark, resident/archived story counts, lifecycle totals.
func (s *Server) handleWindowGet(w http.ResponseWriter, _ *http.Request) {
	m := s.Pipeline().Retire()
	if m == nil {
		httpError(w, http.StatusNotFound, "story retirement not enabled")
		return
	}
	writeJSON(w, m.Snapshot())
}

// handleWindowPut rebases the live retirement policy without restart,
// answering with the resulting window state.
func (s *Server) handleWindowPut(w http.ResponseWriter, r *http.Request) {
	m := s.Pipeline().Retire()
	if m == nil {
		httpError(w, http.StatusNotFound, "story retirement not enabled")
		return
	}
	var body WindowUpdate
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		httpError(w, decodeStatus(err), "invalid window JSON: "+err.Error())
		return
	}
	var u retire.Update
	if body.Window != nil {
		d, err := time.ParseDuration(*body.Window)
		if err != nil {
			httpError(w, http.StatusBadRequest, "invalid window duration: "+err.Error())
			return
		}
		u.Window = &d
	}
	if body.Grace != nil {
		d, err := time.ParseDuration(*body.Grace)
		if err != nil {
			httpError(w, http.StatusBadRequest, "invalid grace duration: "+err.Error())
			return
		}
		u.Grace = &d
	}
	u.MinResident = body.MinResident
	if err := m.Apply(u); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, m.Snapshot())
}
