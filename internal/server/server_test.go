package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	storypivot "repro"
)

func day(d int) time.Time { return time.Date(2014, 7, d, 0, 0, 0, 0, time.UTC) }

func demoDocs() []*storypivot.Document {
	return []*storypivot.Document{
		{Source: "nyt", URL: "http://nytimes.com/doc1.html", Published: day(17),
			Title: "Jetliner Explodes over Ukraine",
			Body:  "A Malaysia Airlines Boeing 777 with 298 people aboard exploded and crashed near Donetsk after being shot down."},
		{Source: "nyt", URL: "http://nytimes.com/doc2.html", Published: day(18),
			Title: "Evidence of Russian Links to Jet's Downing",
			Body:  "Officials leading the criminal investigation into the crash of the plane said it was shot down over Ukraine."},
		{Source: "wsj", URL: "http://online.wsj.com/doc3.html", Published: day(17),
			Title: "Passenger Jet Felled over Ukraine",
			Body:  "The United States government concluded that the passenger jet crashed over Ukraine after being shot down by a missile."},
		{Source: "wsj", URL: "http://online.wsj.com/doc4.html", Published: day(18),
			Title: "Google Battles Yelp",
			Body:  "Google rival Yelp says the search giant is promoting its own content at the expense of users."},
	}
}

func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	s.Preload(demoDocs()...)
	if err := s.SelectAll(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}

func TestDocumentsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var docs []DocumentView
	getJSON(t, ts.URL+"/api/documents", &docs)
	if len(docs) != 4 {
		t.Fatalf("documents = %d", len(docs))
	}
	for _, d := range docs {
		if !d.Selected {
			t.Errorf("document %s not selected after SelectAll", d.URL)
		}
		if d.Preview == "" || d.Title == "" {
			t.Errorf("document view incomplete: %+v", d)
		}
	}
}

func TestSourcesAndStories(t *testing.T) {
	_, ts := newTestServer(t)
	var sources []string
	getJSON(t, ts.URL+"/api/sources", &sources)
	if len(sources) != 2 {
		t.Fatalf("sources = %v", sources)
	}
	var stories []StoryView
	getJSON(t, ts.URL+"/api/stories?source=nyt", &stories)
	if len(stories) == 0 {
		t.Fatal("no nyt stories")
	}
	for _, st := range stories {
		if st.Source != "nyt" || st.Size == 0 {
			t.Errorf("bad story view: %+v", st)
		}
	}
	// detail=1 includes snippets.
	getJSON(t, ts.URL+"/api/stories?source=nyt&detail=1", &stories)
	if len(stories[0].Snippets) == 0 {
		t.Error("detail view missing snippets")
	}
	// Missing parameter is a 400.
	resp, _ := http.Get(ts.URL + "/api/stories")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing source -> %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestIntegratedEndpoints(t *testing.T) {
	_, ts := newTestServer(t)
	var list []IntegratedView
	getJSON(t, ts.URL+"/api/integrated", &list)
	if len(list) == 0 {
		t.Fatal("no integrated stories")
	}
	var multi *IntegratedView
	for i := range list {
		if len(list[i].Sources) > 1 {
			multi = &list[i]
		}
	}
	if multi == nil {
		t.Fatal("no multi-source story (crash must align)")
	}
	var one IntegratedView
	getJSON(t, fmt.Sprintf("%s/api/integrated/%d", ts.URL, multi.ID), &one)
	if len(one.Snippets) == 0 || len(one.Members) < 2 {
		t.Fatalf("detail view incomplete: %+v", one)
	}
	roles := 0
	for _, sn := range one.Snippets {
		if sn.Role != "" {
			roles++
		}
	}
	if roles == 0 {
		t.Error("no snippet roles in detail view")
	}
	// Unknown ID -> 404, bad ID -> 400.
	resp, _ := http.Get(ts.URL + "/api/integrated/999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id -> %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Get(ts.URL + "/api/integrated/xyz")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id -> %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestSearchAndTimeline(t *testing.T) {
	_, ts := newTestServer(t)
	var hits SearchPageView
	getJSON(t, ts.URL+"/api/search?q=plane+crash", &hits)
	if len(hits.Results) == 0 || hits.Total == 0 {
		t.Fatalf("search returned nothing: %+v", hits)
	}
	if hits.Total != len(hits.Results) {
		t.Fatalf("total %d != results %d on an unpaged small corpus", hits.Total, len(hits.Results))
	}
	if hits.Limit != 50 || hits.Offset != 0 {
		t.Fatalf("default page = offset %d limit %d", hits.Offset, hits.Limit)
	}
	var tl TimelinePageView
	getJSON(t, ts.URL+"/api/timeline?entity=UKR", &tl)
	if len(tl.Results) < 2 {
		t.Fatalf("timeline = %d snippets", len(tl.Results))
	}
	if tl.Total != len(tl.Results) {
		t.Fatalf("timeline total %d != results %d", tl.Total, len(tl.Results))
	}
	for i := 1; i < len(tl.Results); i++ {
		if tl.Results[i].Timestamp.Before(tl.Results[i-1].Timestamp) {
			t.Fatal("timeline not chronological")
		}
	}
}

func TestQueryPagination(t *testing.T) {
	_, ts := newTestServer(t)
	// Full timeline as reference.
	var full TimelinePageView
	getJSON(t, ts.URL+"/api/timeline?entity=UKR", &full)
	if full.Total < 2 {
		t.Fatalf("need >= 2 timeline snippets, got %d", full.Total)
	}
	// Page through one snippet at a time; pages must tile the full list.
	var paged []SnippetView
	for off := 0; off < full.Total; off++ {
		var page TimelinePageView
		getJSON(t, fmt.Sprintf("%s/api/timeline?entity=UKR&offset=%d&limit=1", ts.URL, off), &page)
		if page.Total != full.Total {
			t.Fatalf("page total %d != full total %d", page.Total, full.Total)
		}
		if len(page.Results) != 1 {
			t.Fatalf("page at offset %d = %d results", off, len(page.Results))
		}
		paged = append(paged, page.Results...)
	}
	for i := range paged {
		if paged[i].ID != full.Results[i].ID {
			t.Fatalf("paged[%d] = snippet %d, full[%d] = snippet %d", i, paged[i].ID, i, full.Results[i].ID)
		}
	}
	// Offset beyond the end: empty page, total still reported.
	var beyond TimelinePageView
	getJSON(t, fmt.Sprintf("%s/api/timeline?entity=UKR&offset=%d", ts.URL, full.Total+10), &beyond)
	if len(beyond.Results) != 0 || beyond.Total != full.Total {
		t.Fatalf("beyond-end page = %+v", beyond)
	}
	// Search pagination: limit=1 returns the top hit only.
	var all SearchPageView
	getJSON(t, ts.URL+"/api/search?q=plane+crash", &all)
	var top SearchPageView
	getJSON(t, ts.URL+"/api/search?q=plane+crash&limit=1", &top)
	if len(top.Results) != 1 || top.Results[0].ID != all.Results[0].ID {
		t.Fatalf("limit=1 top hit mismatch: %+v vs %+v", top.Results, all.Results[:1])
	}
	if top.Total != all.Total {
		t.Fatalf("paged search total %d != full %d", top.Total, all.Total)
	}
	// The limit cap holds.
	var capped SearchPageView
	getJSON(t, ts.URL+"/api/search?q=plane+crash&limit=99999", &capped)
	if capped.Limit != 500 {
		t.Fatalf("limit not capped: %d", capped.Limit)
	}
	// Malformed parameters are rejected.
	for _, u := range []string{"/api/search?q=x&offset=-1", "/api/search?q=x&limit=0", "/api/timeline?entity=UKR&limit=abc"} {
		resp, err := http.Get(ts.URL + u)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", u, resp.StatusCode)
		}
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	// Force an alignment so stats are warm.
	var list []IntegratedView
	getJSON(t, ts.URL+"/api/integrated", &list)
	var stats StatsView
	getJSON(t, ts.URL+"/api/stats", &stats)
	if stats.Ingested == 0 || stats.Integrated == 0 || len(stats.Sources) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats.EntityCount == 0 || stats.DocumentCount != 4 {
		t.Fatalf("stats dataset panel wrong: %+v", stats)
	}
}

func TestAddRemoveDocumentFlow(t *testing.T) {
	s, ts := newTestServer(t)
	// Add a new document via POST.
	doc := storypivot.Document{
		Source: "blog", URL: "http://blog.example/p1", Published: day(19),
		Title: "Sanctions Against Russia Expanded",
		Body:  "The European Union announced expanded sanctions against Russia over the conflict in Ukraine.",
	}
	body, _ := json.Marshal(doc)
	resp, err := http.Post(ts.URL+"/api/documents", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST document -> %d", resp.StatusCode)
	}
	resp.Body.Close()
	var sources []string
	getJSON(t, ts.URL+"/api/sources", &sources)
	if len(sources) != 3 {
		t.Fatalf("sources after add = %v", sources)
	}
	// Duplicate add is rejected.
	resp, _ = http.Post(ts.URL+"/api/documents", "application/json", bytes.NewReader(body))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("duplicate add -> %d", resp.StatusCode)
	}
	resp.Body.Close()

	// Remove it again (DELETE rebuilds the pipeline without it).
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/documents?url="+doc.URL, nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("DELETE -> %d", resp.StatusCode)
	}
	resp.Body.Close()
	getJSON(t, ts.URL+"/api/sources", &sources)
	if len(sources) != 2 {
		t.Fatalf("sources after remove = %v", sources)
	}
	// Unknown delete -> 404; missing url -> 400.
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/api/documents?url=http://nope", nil)
	resp, _ = http.DefaultClient.Do(req)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown delete -> %d", resp.StatusCode)
	}
	resp.Body.Close()
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/api/documents", nil)
	resp, _ = http.DefaultClient.Do(req)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing url delete -> %d", resp.StatusCode)
	}
	resp.Body.Close()
	_ = s
}

func TestSelectSubsetChangesStories(t *testing.T) {
	s, ts := newTestServer(t)
	// Deselect everything but one wsj document: no multi-source stories.
	if err := s.Select([]string{"http://online.wsj.com/doc3.html"}); err != nil {
		t.Fatal(err)
	}
	var list []IntegratedView
	getJSON(t, ts.URL+"/api/integrated", &list)
	for _, is := range list {
		if len(is.Sources) > 1 {
			t.Fatal("multi-source story with only one document selected")
		}
	}
	var docs []DocumentView
	getJSON(t, ts.URL+"/api/documents", &docs)
	selected := 0
	for _, d := range docs {
		if d.Selected {
			selected++
		}
	}
	if selected != 1 {
		t.Fatalf("selected = %d", selected)
	}
}

func TestIndexPage(t *testing.T) {
	_, ts := newTestServer(t)
	resp, err := http.Get(ts.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET / -> %d", resp.StatusCode)
	}
	buf := new(bytes.Buffer)
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "StoryPivot") || !strings.Contains(buf.String(), "Document Selection") {
		t.Fatal("index page incomplete")
	}
	// Unknown path under / is 404.
	resp2, _ := http.Get(ts.URL + "/nope")
	if resp2.StatusCode != http.StatusNotFound {
		t.Errorf("GET /nope -> %d", resp2.StatusCode)
	}
	resp2.Body.Close()
}

func TestBadJSONBodies(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := http.Post(ts.URL+"/api/documents", "application/json", strings.NewReader("{nope"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad doc JSON -> %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Post(ts.URL+"/api/documents/select", "application/json", strings.NewReader("{nope"))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad select JSON -> %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Get(ts.URL + "/api/search")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing q -> %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Get(ts.URL + "/api/timeline")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("missing entity -> %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestContextAndProfilesEndpoints(t *testing.T) {
	s, err := New(storypivot.WithKnowledgeBase(storypivot.SeedKnowledgeBase()))
	if err != nil {
		t.Fatal(err)
	}
	s.Preload(demoDocs()...)
	if err := s.SelectAll(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var list []IntegratedView
	getJSON(t, ts.URL+"/api/integrated", &list)
	var multiID uint64
	for _, is := range list {
		if len(is.Sources) > 1 {
			multiID = is.ID
		}
	}
	if multiID == 0 {
		t.Fatal("no multi-source story")
	}
	var ctx struct {
		Known   []map[string]any `json:"Known"`
		Unknown []string         `json:"Unknown"`
	}
	getJSON(t, fmt.Sprintf("%s/api/context/%d", ts.URL, multiID), &ctx)
	if len(ctx.Known) == 0 {
		t.Fatalf("context empty: %+v", ctx)
	}
	// Unknown story -> 404; bad id -> 400.
	resp, _ := http.Get(ts.URL + "/api/context/999999")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown story context -> %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Get(ts.URL + "/api/context/abc")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id context -> %d", resp.StatusCode)
	}
	resp.Body.Close()

	var profiles []map[string]any
	getJSON(t, ts.URL+"/api/profiles", &profiles)
	if len(profiles) != 2 {
		t.Fatalf("profiles = %d", len(profiles))
	}
}

func TestContextWithoutKB(t *testing.T) {
	_, ts := newTestServer(t)
	resp, _ := http.Get(ts.URL + "/api/context/1")
	if resp.StatusCode != http.StatusNotImplemented {
		t.Fatalf("context without KB -> %d", resp.StatusCode)
	}
	resp.Body.Close()
}

func TestTrendingEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var trends []TrendView
	getJSON(t, ts.URL+"/api/trending?window=96h", &trends)
	// The demo corpus is tiny and recent-heavy; trending must at least
	// not error and each row must be well-formed.
	for _, tr := range trends {
		if tr.Recent <= 0 || tr.Score <= 0 {
			t.Errorf("bad trend row: %+v", tr)
		}
	}
	// Bad parameters -> 400.
	resp, _ := http.Get(ts.URL + "/api/trending?window=nope")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad window -> %d", resp.StatusCode)
	}
	resp.Body.Close()
	resp, _ = http.Get(ts.URL + "/api/trending?now=yesterday")
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad now -> %d", resp.StatusCode)
	}
	resp.Body.Close()
}
