package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	storypivot "repro"
	"repro/internal/eval"
	"repro/internal/event"
	"repro/internal/feed"
	"repro/internal/httpx"
	"repro/internal/obs"
	"repro/internal/qcache"
	"repro/internal/quota"
	"repro/internal/text"
)

// Response-path instrumentation; request counting and latency live in
// httpx.Instrument, and the pipeline stages report their own metrics.
var (
	metEncodeErrors = obs.GetCounter("storypivot_http_encode_errors_total",
		"responses whose JSON encoding failed before any bytes were sent")
	metWriteErrors = obs.GetCounter("storypivot_http_write_errors_total",
		"responses aborted mid-write (client gone or connection cut)")
	metEncodesSkipped = obs.GetCounter("storypivot_http_encodes_skipped_total",
		"responses served without running the JSON encoder (cache hits and 304s)")
)

// Server is the demonstration backend. It owns a set of available
// documents (Figure 3's document-selection module); the selected subset is
// run through a StoryPivot pipeline whose results the remaining modules
// expose. Adding a document ingests it incrementally; deselecting rebuilds
// the pipeline from the remaining selection, which mirrors the demo's
// "remove documents ... to explore how missing information affects the
// displayed stories" interaction.
//
// Locking: the live pipeline is an atomic snapshot that read handlers
// load without taking any lock, so query traffic (microsecond-fast
// since the PR-3 index) never queues behind a slow deselect-rebuild.
// Mutations serialize on writeMu for their whole duration — including
// the rebuild ingest — and take stateMu only for the brief selection
// swap; read handlers that need selection metadata take stateMu.RLock
// and therefore block only for that swap, not the rebuild.
type Server struct {
	opts []storypivot.Option

	// pipeline is the lock-free read snapshot. Queries on a pipeline
	// that was swapped out mid-request stay valid: the engine and index
	// remain queryable after Close (the server attaches no store).
	pipeline atomic.Pointer[storypivot.Pipeline]

	// writeMu serializes Select/AddDocument/RemoveDocument. It is never
	// taken by read handlers.
	writeMu sync.Mutex

	// stateMu guards the selection metadata below.
	stateMu   sync.RWMutex
	available []*storypivot.Document
	selected  map[string]bool // by URL

	// feeds is the optionally attached continuous-ingest manager; it
	// backs /api/feeds and folds into /healthz.
	feeds atomic.Pointer[feed.Manager]

	// feedEpoch is the highest cluster feed-assignment epoch applied via
	// PUT /api/cluster/feeds; older epochs are rejected with 409.
	feedEpoch atomic.Uint64

	ingestT *eval.Timer
	alignT  *eval.Timer

	// cache, when enabled, serves /api/search and /api/timeline from
	// encoded bytes, invalidated by the engine's result publishes via a
	// qcache.Sink attached per pipeline (rebuilds rebind a fresh sink
	// and bump the epoch, so entries never outlive their engine).
	cache *qcache.Cache

	// quotas, when enabled, backs the /api/admin/quotas endpoints; the
	// throttling middleware itself is wired by the cmd via
	// httpx.Config.Quota, so embedded/test handlers stay unmetered
	// unless they opt in.
	quotas *quota.Limiter

	// peers, when set (cluster workers started with -peers), is the
	// advertised worker peer list served on GET /api/cluster/members so
	// operators can inspect a worker's view of the cluster.
	peers atomic.Pointer[[]string]

	closed atomic.Bool

	// rebuildHook, when set (fault-injection tests), runs during a
	// rebuild after ingest and before the snapshot swap, with writeMu
	// held — the window in which readers must keep being served.
	rebuildHook func()
}

// New creates a server; opts configure every pipeline it builds.
func New(opts ...storypivot.Option) (*Server, error) {
	p, err := storypivot.New(opts...)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:     opts,
		selected: make(map[string]bool),
		ingestT:  eval.NewTimer(),
		alignT:   eval.NewTimer(),
	}
	s.pipeline.Store(p)
	return s, nil
}

// EnableCache attaches a query-result cache. Must be called before the
// server starts handling requests. The returned cache is the one the
// server consults; tests use it to reach Len and the metrics.
func (s *Server) EnableCache(cfg qcache.Config) *qcache.Cache {
	c := qcache.New(cfg)
	c.StartSweeper()
	s.cache = c
	s.Pipeline().Engine().AddResultSink(qcache.NewSink(c))
	return c
}

// EnableQuotas attaches a per-tenant limiter with the given default
// limit, exposing it on GET/PUT /api/admin/quotas. The enforcement
// middleware is quota.Middleware(limiter), to be placed in the httpx
// stack via Config.Quota (the cmd does this; see QuotaMiddleware).
func (s *Server) EnableQuotas(def quota.Limit) *quota.Limiter {
	s.quotas = quota.NewLimiter(def)
	return s.quotas
}

// QuotaMiddleware returns the enforcement middleware for the enabled
// limiter, or nil when quotas are off.
func (s *Server) QuotaMiddleware() httpx.Middleware {
	if s.quotas == nil {
		return nil
	}
	return quota.Middleware(s.quotas)
}

// Preload registers documents as available (but not selected).
func (s *Server) Preload(docs ...*storypivot.Document) {
	s.stateMu.Lock()
	defer s.stateMu.Unlock()
	s.available = append(s.available, docs...)
}

// SelectAll selects every available document and ingests it.
func (s *Server) SelectAll() error {
	s.stateMu.RLock()
	urls := make([]string, 0, len(s.available))
	for _, d := range s.available {
		urls = append(urls, d.URL)
	}
	s.stateMu.RUnlock()
	return s.Select(urls)
}

// Select replaces the selection with the given URLs and rebuilds the
// pipeline over them.
func (s *Server) Select(urls []string) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	want := make(map[string]bool, len(urls))
	for _, u := range urls {
		want[u] = true
	}
	return s.rebuild(want)
}

// rebuild constructs a fresh pipeline over the wanted subset and swaps
// it in. The caller holds writeMu; readers keep serving the old
// snapshot until the swap, so the (potentially slow) ingest below
// blocks no read traffic.
func (s *Server) rebuild(want map[string]bool) error {
	p, err := storypivot.New(s.opts...)
	if err != nil {
		return err
	}
	s.stateMu.RLock()
	avail := append([]*storypivot.Document(nil), s.available...)
	s.stateMu.RUnlock()
	sel := make(map[string]bool, len(want))
	for _, d := range avail {
		if want[d.URL] {
			start := time.Now()
			if _, err := p.AddDocument(d); err != nil {
				continue // documents with no extractable content stay unselected
			}
			s.ingestT.Observe(time.Since(start))
			sel[d.URL] = true
		}
	}
	if s.rebuildHook != nil {
		s.rebuildHook()
	}
	if s.cache != nil {
		// Rebind BEFORE the swap so no publish of the new engine is
		// missed, and bump the epoch AFTER so every entry computed
		// against the old pipeline dies. The old pipeline's orphaned
		// sink can still fire until Close; its bumps are conservative
		// extra invalidations, never missing ones.
		p.Engine().AddResultSink(qcache.NewSink(s.cache))
	}
	s.stateMu.Lock()
	old := s.pipeline.Swap(p)
	s.selected = sel
	s.stateMu.Unlock()
	if s.cache != nil {
		s.cache.BumpAll()
	}
	if old != nil {
		old.Close()
	}
	return nil
}

// AddDocument registers a new document, selects it, and ingests it
// incrementally into the live pipeline (the engine supports concurrent
// query-vs-ingest, so readers are not paused). It returns how many
// extracted snippets the engine accepted and any per-snippet ingest
// errors; the document is registered as long as extraction produced
// something, even if individual snippets were rejected.
func (s *Server) AddDocument(d *storypivot.Document) (accepted int, errs []error, err error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.stateMu.RLock()
	for _, have := range s.available {
		if have.URL == d.URL {
			s.stateMu.RUnlock()
			return 0, nil, fmt.Errorf("server: document %q already registered", d.URL)
		}
	}
	s.stateMu.RUnlock()
	start := time.Now()
	_, accepted, errs = s.pipeline.Load().AddDocumentStats(d)
	if accepted == 0 && len(errs) > 0 {
		// Nothing made it in: extraction failed or every snippet was
		// rejected. The document stays unregistered.
		return 0, errs, errors.Join(errs...)
	}
	s.ingestT.Observe(time.Since(start))
	s.stateMu.Lock()
	s.available = append(s.available, d)
	s.selected[d.URL] = true
	s.stateMu.Unlock()
	return accepted, errs, nil
}

// RemoveDocument deselects a document and rebuilds the pipeline without
// it. It reports whether the document was selected.
func (s *Server) RemoveDocument(url string) (bool, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.stateMu.RLock()
	if !s.selected[url] {
		s.stateMu.RUnlock()
		return false, nil
	}
	want := make(map[string]bool, len(s.selected))
	for u := range s.selected {
		if u != url {
			want[u] = true
		}
	}
	s.stateMu.RUnlock()
	return true, s.rebuild(want)
}

// Pipeline returns the live pipeline snapshot (for embedding in other
// tools). The load is lock-free; it never queues behind a rebuild.
func (s *Server) Pipeline() *storypivot.Pipeline {
	return s.pipeline.Load()
}

// SetPeers records the worker's advertised peer list (cluster mode).
func (s *Server) SetPeers(peers []string) {
	cp := append([]string(nil), peers...)
	s.peers.Store(&cp)
}

// handleClusterMembers reports this node's cluster view: its role and
// the peers it was configured with (empty outside cluster mode).
func (s *Server) handleClusterMembers(w http.ResponseWriter, _ *http.Request) {
	role := "standalone"
	peers := []string{}
	if p := s.peers.Load(); p != nil {
		role = "worker"
		peers = append(peers, *p...)
	}
	writeJSON(w, map[string]any{"role": role, "peers": peers})
}

// Close releases the server's pipeline: the index background compactor
// stops and any persistence flushes. Call it during shutdown after the
// HTTP listener has drained; it is idempotent.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	if s.cache != nil {
		s.cache.Close()
	}
	if p := s.pipeline.Load(); p != nil {
		return p.Close()
	}
	return nil
}

// Handler returns the HTTP handler exposing the demo API and UI, plus
// the observability surface: /metrics (Prometheus text format),
// /debug/vars (expvar), and /debug/pprof.
// Recovery and instrumentation are always on, even for embedded or
// test handlers; admission control, deadlines, and body caps are
// opt-in via HandlerWith (the cmd wires them from flags).
func (s *Server) Handler() http.Handler {
	return httpx.Chain(httpx.Instrument(), httpx.Recover())(s.rawMux())
}

// HandlerWith returns the handler wrapped in the full httpx production
// stack (panic recovery, instrumentation, admission gate, body cap,
// per-request deadline) configured by cfg.
func (s *Server) HandlerWith(cfg httpx.Config) http.Handler {
	return httpx.Wrap(s.rawMux(), cfg)
}

// rawMux builds the route table with no middleware.
func (s *Server) rawMux() http.Handler {
	mux := http.NewServeMux()
	debug := obs.DebugMux()
	mux.Handle("GET /metrics", debug)
	mux.Handle("GET /debug/", debug)
	mux.HandleFunc("GET /api/documents", s.handleDocuments)
	mux.HandleFunc("POST /api/documents", s.handleAddDocument)
	mux.HandleFunc("POST /api/documents/select", s.handleSelect)
	mux.HandleFunc("DELETE /api/documents", s.handleRemoveDocument)
	mux.HandleFunc("GET /api/sources", s.handleSources)
	mux.HandleFunc("GET /api/stories", s.handleStories)
	mux.HandleFunc("GET /api/integrated", s.handleIntegrated)
	mux.HandleFunc("GET /api/integrated/{id}", s.handleIntegratedOne)
	mux.HandleFunc("GET /api/search", s.handleSearch)
	mux.HandleFunc("GET /api/timeline", s.handleTimeline)
	mux.HandleFunc("GET /api/stories/by-entity", s.handleStoriesByEntity)
	mux.HandleFunc("GET /api/cluster/members", s.handleClusterMembers)
	mux.HandleFunc("GET /api/cluster/feeds", s.handleFeedAssignGet)
	mux.HandleFunc("PUT /api/cluster/feeds", s.handleFeedAssignPut)
	mux.HandleFunc("GET /api/context/{id}", s.handleContext)
	mux.HandleFunc("GET /api/profiles", s.handleProfiles)
	mux.HandleFunc("GET /api/trending", s.handleTrending)
	mux.HandleFunc("GET /api/stats", s.handleStats)
	mux.HandleFunc("GET /api/feeds", s.handleFeeds)
	mux.HandleFunc("GET /api/admin/quotas", s.handleQuotasGet)
	mux.HandleFunc("PUT /api/admin/quotas", s.handleQuotasPut)
	mux.HandleFunc("GET /api/window", s.handleWindowGet)
	mux.HandleFunc("PUT /api/admin/window", s.handleWindowPut)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /", s.handleIndex)
	return mux
}

// encodeJSON renders v exactly as writeJSON would send it. Split out so
// the cache can store the encoded bytes and later serve them — or a
// 304 — without re-running the encoder.
func encodeJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// writeBody commits an already-encoded JSON body: the status line goes
// out only once a full body exists, and write errors on aborted
// connections are recorded rather than dropped.
func writeBody(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(body); err != nil {
		metWriteErrors.Inc()
	}
}

// writeJSON encodes v completely before touching the connection, so an
// encoding failure becomes a clean 500 instead of a half-written
// response that the instrumentation would count as a 200.
func writeJSON(w http.ResponseWriter, v any) {
	body, err := encodeJSON(v)
	if err != nil {
		metEncodeErrors.Inc()
		httpError(w, http.StatusInternalServerError, "response encoding failed: "+err.Error())
		return
	}
	writeBody(w, body)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func (s *Server) handleDocuments(w http.ResponseWriter, _ *http.Request) {
	s.stateMu.RLock()
	defer s.stateMu.RUnlock()
	out := make([]DocumentView, 0, len(s.available))
	for _, d := range s.available {
		preview := d.Body
		if len(preview) > 140 {
			preview = preview[:140] + "..."
		}
		out = append(out, DocumentView{
			Source:    string(d.Source),
			URL:       d.URL,
			Title:     d.Title,
			Preview:   preview,
			Published: d.Published,
			Selected:  s.selected[d.URL],
		})
	}
	writeJSON(w, out)
}

// decodeStatus maps a request-body decode failure to its status:
// bodies cut off by the httpx body cap are 413, malformed JSON is 400.
func decodeStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

func (s *Server) handleAddDocument(w http.ResponseWriter, r *http.Request) {
	var d storypivot.Document
	if err := json.NewDecoder(r.Body).Decode(&d); err != nil {
		httpError(w, decodeStatus(err), "invalid document JSON: "+err.Error())
		return
	}
	accepted, ingestErrs, err := s.AddDocument(&d)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	resp := map[string]any{
		"status":        "added",
		"url":           d.URL,
		"accepted":      accepted,
		"ingest_errors": len(ingestErrs),
	}
	if len(ingestErrs) > 0 {
		// Partial acceptance: report which snippets were rejected (capped
		// so a pathological document cannot balloon the response).
		msgs := make([]string, 0, len(ingestErrs))
		for _, e := range ingestErrs {
			if len(msgs) == 10 {
				msgs = append(msgs, fmt.Sprintf("... and %d more", len(ingestErrs)-10))
				break
			}
			msgs = append(msgs, e.Error())
		}
		resp["errors"] = msgs
	}
	writeJSON(w, resp)
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req struct {
		URLs []string `json:"urls"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, decodeStatus(err), "invalid selection JSON: "+err.Error())
		return
	}
	if err := s.Select(req.URLs); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, map[string]any{"status": "selected", "count": len(req.URLs)})
}

func (s *Server) handleRemoveDocument(w http.ResponseWriter, r *http.Request) {
	url := r.URL.Query().Get("url")
	if url == "" {
		httpError(w, http.StatusBadRequest, "missing url parameter")
		return
	}
	ok, err := s.RemoveDocument(url)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if !ok {
		httpError(w, http.StatusNotFound, "document not selected: "+url)
		return
	}
	writeJSON(w, map[string]string{"status": "removed", "url": url})
}

func (s *Server) handleSources(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Pipeline().Sources())
}

func (s *Server) handleStories(w http.ResponseWriter, r *http.Request) {
	src := r.URL.Query().Get("source")
	if src == "" {
		httpError(w, http.StatusBadRequest, "missing source parameter")
		return
	}
	p := s.Pipeline()
	stories := p.Stories(storypivot.SourceID(src))
	out := make([]StoryView, 0, len(stories))
	for _, st := range stories {
		out = append(out, storyView(p, st, r.URL.Query().Get("detail") == "1"))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, out)
}

func (s *Server) handleIntegrated(w http.ResponseWriter, _ *http.Request) {
	start := time.Now()
	p := s.Pipeline()
	res := p.Result()
	s.alignT.Observe(time.Since(start))
	out := make([]IntegratedView, 0, len(res.Integrated()))
	for _, is := range res.Integrated() {
		out = append(out, integratedView(p, is, false))
	}
	writeJSON(w, out)
}

func (s *Server) handleIntegratedOne(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid story id")
		return
	}
	p := s.Pipeline()
	for _, is := range p.Result().Integrated() {
		if uint64(is.ID) == id {
			writeJSON(w, integratedView(p, is, true))
			return
		}
	}
	httpError(w, http.StatusNotFound, "no such integrated story")
}

// Pagination bounds for the query endpoints: requests without a limit
// get defaultPageLimit results; limit is capped at maxPageLimit so the
// server never serialises unbounded result sets. deep=1 raises the cap
// to deepPageLimit — the scatter-gather router must fetch offset+limit
// results per shard to paginate globally, so a deep client page (say
// offset 4500, limit 500) becomes a limit-5000 shard fetch that the
// default cap would truncate, silently corrupting global pagination.
const (
	defaultPageLimit = 50
	maxPageLimit     = 500
	deepPageLimit    = 10000
)

// pageParams parses offset/limit from already-parsed query values (the
// cached handlers parse r.URL.Query() exactly once per request),
// applying the default and cap. It reports ok=false (after writing the
// error) on malformed values.
func pageParams(w http.ResponseWriter, vals url.Values) (offset, limit int, ok bool) {
	offset, limit = 0, defaultPageLimit
	if v := vals.Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "invalid offset parameter")
			return 0, 0, false
		}
		offset = n
	}
	if v := vals.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "invalid limit parameter")
			return 0, 0, false
		}
		limit = n
	}
	ceil := maxPageLimit
	if vals.Get("deep") == "1" {
		ceil = deepPageLimit
	}
	if limit > ceil {
		limit = ceil
	}
	return offset, limit, true
}

// cacheMode classifies the request's Cache-Control directives: normal
// lookups, no-cache (bypass the read but refresh the stored entry —
// forced revalidation), and no-store (touch the cache not at all).
type cacheMode int

const (
	modeNormal cacheMode = iota
	modeNoCache
	modeNoStore
)

func requestCacheMode(r *http.Request) cacheMode {
	cc := r.Header.Get("Cache-Control")
	switch {
	case cc == "":
		return modeNormal
	case strings.Contains(cc, "no-store"):
		return modeNoStore
	case strings.Contains(cc, "no-cache"):
		return modeNoCache
	}
	return modeNormal
}

// etagMatch implements If-None-Match weak comparison (RFC 9110 §13.1.2):
// validators match ignoring the W/ prefix; "*" matches anything.
func etagMatch(inm, etag string) bool {
	if inm == "" {
		return false
	}
	if strings.TrimSpace(inm) == "*" {
		return true
	}
	etag = strings.TrimPrefix(etag, "W/")
	for _, cand := range strings.Split(inm, ",") {
		if strings.TrimPrefix(strings.TrimSpace(cand), "W/") == etag {
			return true
		}
	}
	return false
}

// serveEncoded commits an already-encoded cacheable response: a bodyless
// 304 when the client's If-None-Match matches, the full 200 otherwise.
// Vary names X-API-Key because the quota middleware makes the status
// (200 vs 429) credential-dependent — a shared intermediary must not
// replay one tenant's response for another. X-Cache is diagnostic:
// HIT (served from cache), MISS (computed and stored), BYPASS
// (computed because the request opted out of cache reads).
func serveEncoded(w http.ResponseWriter, r *http.Request, body []byte, etag, xcache string) {
	h := w.Header()
	h.Set("ETag", etag)
	h.Set("Vary", "X-API-Key")
	h.Set("X-Cache", xcache)
	if etagMatch(r.Header.Get("If-None-Match"), etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	writeBody(w, body)
}

func searchPage(rd snippetTexter, hits []*storypivot.IntegratedStory, scores []float64, total, offset, limit int) SearchPageView {
	out := make([]IntegratedView, 0, len(hits))
	for _, is := range hits {
		out = append(out, integratedView(rd, is, false))
	}
	return SearchPageView{Total: total, Offset: offset, Limit: limit, Results: out, Scores: scores}
}

func timelinePage(rd snippetTexter, sns []*storypivot.Snippet, total, offset, limit int) TimelinePageView {
	out := make([]SnippetView, 0, len(sns))
	for _, sn := range sns {
		out = append(out, snippetView(rd, sn, event.RoleUnknown))
	}
	return TimelinePageView{Total: total, Offset: offset, Limit: limit, Results: out}
}

// scoredEndpoint appends the scores=1 marker to a cache-key endpoint
// namespace: scored and unscored responses to the same query differ in
// bytes, so they must never share a cache entry.
func scoredEndpoint(endpoint string, withScores bool) string {
	if withScores {
		return endpoint + "+scores"
	}
	return endpoint
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	vals := r.URL.Query()
	q := vals.Get("q")
	if q == "" {
		httpError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	offset, limit, ok := pageParams(w, vals)
	if !ok {
		return
	}
	withScores := vals.Get("scores") == "1"
	compute := func(p *storypivot.Pipeline) (any, bool) {
		if withScores {
			hits, scores, total := p.SearchScoredN(q, offset, limit)
			return searchPage(p, hits, scores, total, offset, limit), true
		}
		hits, total := p.SearchN(q, offset, limit)
		return searchPage(p, hits, nil, total, offset, limit), true
	}
	if s.cache == nil {
		view, _ := compute(s.Pipeline())
		writeJSON(w, view)
		return
	}
	s.cachedQuery(w, r, scoredEndpoint("search", withScores), q,
		func(deps *qcache.Deps) {
			for _, tok := range text.Pipeline(q) {
				deps.AddTerm(tok)
			}
		},
		compute, offset, limit)
}

// handleStoriesByEntity serves the ranked integrated stories mentioning
// an entity — the paged, cacheable form of the library-level
// StoriesByEntity query, and the third endpoint the cluster router
// scatter-gathers. The envelope is SearchPageView: same shape, same
// ordering contract (score descending, ties by ascending ID).
func (s *Server) handleStoriesByEntity(w http.ResponseWriter, r *http.Request) {
	vals := r.URL.Query()
	e := vals.Get("entity")
	if e == "" {
		httpError(w, http.StatusBadRequest, "missing entity parameter")
		return
	}
	offset, limit, ok := pageParams(w, vals)
	if !ok {
		return
	}
	withScores := vals.Get("scores") == "1"
	compute := func(p *storypivot.Pipeline) (any, bool) {
		if withScores {
			hits, scores, total := p.StoriesByEntityScoredN(storypivot.Entity(e), offset, limit)
			return searchPage(p, hits, scores, total, offset, limit), true
		}
		hits, total := p.StoriesByEntityN(storypivot.Entity(e), offset, limit)
		return searchPage(p, hits, nil, total, offset, limit), true
	}
	if s.cache == nil {
		view, _ := compute(s.Pipeline())
		writeJSON(w, view)
		return
	}
	s.cachedQuery(w, r, scoredEndpoint("by-entity", withScores), e,
		func(deps *qcache.Deps) { deps.AddEntity(e) },
		compute, offset, limit)
}

func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	vals := r.URL.Query()
	e := vals.Get("entity")
	if e == "" {
		httpError(w, http.StatusBadRequest, "missing entity parameter")
		return
	}
	offset, limit, ok := pageParams(w, vals)
	if !ok {
		return
	}
	if s.cache == nil {
		p := s.Pipeline()
		sns, total := p.TimelineN(storypivot.Entity(e), offset, limit)
		writeJSON(w, timelinePage(p, sns, total, offset, limit))
		return
	}
	s.cachedQuery(w, r, "timeline", e,
		func(deps *qcache.Deps) { deps.AddEntity(e) },
		func(p *storypivot.Pipeline) (any, bool) {
			sns, total := p.TimelineN(storypivot.Entity(e), offset, limit)
			return timelinePage(p, sns, total, offset, limit), true
		}, offset, limit)
}

// cachedQuery is the shared cache protocol for the paged query
// endpoints. The order is load-bearing (see the qcache package
// comment): settle the pipeline first so pending ingests publish —
// and bump — before the lookup; on a miss, capture the validity token
// BEFORE the index reads, so a publish racing the computation lands
// the entry already-invalid instead of stale.
func (s *Server) cachedQuery(w http.ResponseWriter, r *http.Request, endpoint, query string,
	addDeps func(*qcache.Deps), compute func(*storypivot.Pipeline) (any, bool), offset, limit int) {
	p := s.Pipeline()
	p.Result() // settle: align pending ingests and run their invalidations
	key := qcache.Key(endpoint, query, offset, limit)
	mode := requestCacheMode(r)
	if mode == modeNormal {
		if body, etag, ok := s.cache.Get(key); ok {
			metEncodesSkipped.Inc()
			serveEncoded(w, r, body, etag, "HIT")
			return
		}
	}
	var deps qcache.Deps
	addDeps(&deps)
	tok := s.cache.Begin(deps)
	view, ok := compute(p)
	if !ok {
		return // compute wrote its own error response
	}
	body, err := encodeJSON(view)
	if err != nil {
		metEncodeErrors.Inc()
		httpError(w, http.StatusInternalServerError, "response encoding failed: "+err.Error())
		return
	}
	etag := qcache.ETagFor(body)
	if mode != modeNoStore {
		s.cache.Put(key, tok, body, etag)
	}
	label := "MISS"
	if mode != modeNormal {
		label = "BYPASS"
	}
	serveEncoded(w, r, body, etag, label)
}

// handleQuotasGet exposes the live quota configuration.
func (s *Server) handleQuotasGet(w http.ResponseWriter, _ *http.Request) {
	if s.quotas == nil {
		httpError(w, http.StatusNotFound, "quota enforcement not enabled")
		return
	}
	writeJSON(w, s.quotas.Snapshot())
}

// handleQuotasPut applies a quota.Update — new default and/or tenant
// overrides — without restart, answering with the resulting config.
func (s *Server) handleQuotasPut(w http.ResponseWriter, r *http.Request) {
	if s.quotas == nil {
		httpError(w, http.StatusNotFound, "quota enforcement not enabled")
		return
	}
	var u quota.Update
	if err := json.NewDecoder(r.Body).Decode(&u); err != nil {
		httpError(w, decodeStatus(err), "invalid quota JSON: "+err.Error())
		return
	}
	if err := s.quotas.Apply(u); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, s.quotas.Snapshot())
}

// handleContext resolves an integrated story's entities against the
// pipeline's knowledge base (paper §3: KB integration for story context).
func (s *Server) handleContext(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid story id")
		return
	}
	p := s.Pipeline()
	if p.KnowledgeBase() == nil {
		httpError(w, http.StatusNotImplemented, "no knowledge base attached")
		return
	}
	for _, is := range p.Result().Integrated() {
		if uint64(is.ID) == id {
			writeJSON(w, p.Context(is))
			return
		}
	}
	httpError(w, http.StatusNotFound, "no such integrated story")
}

// handleProfiles serves the per-source reporting profiles (timeliness,
// coverage, exclusivity) derived from the current alignment.
func (s *Server) handleProfiles(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Pipeline().SourceProfiles())
}

// TrendView is one row of the trending endpoint.
type TrendView struct {
	Story  IntegratedView `json:"story"`
	Recent int            `json:"recent"`
	Score  float64        `json:"score"`
}

// handleTrending ranks stories by recent activity relative to their own
// history. `now` defaults to the corpus's latest timestamp (demo corpora
// are historical, so wall-clock now would always be quiet); `window`
// accepts Go duration syntax (default 72h).
func (s *Server) handleTrending(w http.ResponseWriter, r *http.Request) {
	p := s.Pipeline()
	_, end := p.Engine().TimeRange()
	now := end
	if v := r.URL.Query().Get("now"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "invalid now (want RFC3339)")
			return
		}
		now = t
	}
	window := 72 * time.Hour
	if v := r.URL.Query().Get("window"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, "invalid window duration")
			return
		}
		window = d
	}
	trends := p.Trending(now, window)
	out := make([]TrendView, 0, len(trends))
	for _, tr := range trends {
		out = append(out, TrendView{
			Story:  integratedView(p, tr.Story, false),
			Recent: tr.Recent,
			Score:  tr.Score,
		})
	}
	writeJSON(w, out)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.stateMu.RLock()
	docCount := len(s.selected)
	s.stateMu.RUnlock()
	p := s.Pipeline()
	ingestMean := s.ingestT.Mean()
	alignMean := s.alignT.Mean()

	res := p.Result()
	view := StatsView{
		Ingested:      p.Engine().Ingested(),
		Integrated:    len(res.Integrated()),
		MultiSource:   len(res.MultiSource()),
		Matches:       len(res.Matches()),
		AlignMeanMs:   float64(alignMean) / float64(time.Millisecond),
		IngestMeanUs:  float64(ingestMean) / float64(time.Microsecond),
		DocumentCount: docCount,
	}
	for _, src := range p.Sources() {
		id := p.Engine().Identifier(src)
		if id == nil {
			continue
		}
		st := id.Stats()
		view.Sources = append(view.Sources, SourceStatsView{
			Source:      string(src),
			Snippets:    st.Processed,
			Stories:     id.StoryCount(),
			Comparisons: st.Comparisons,
			Splits:      st.Splits,
			Merges:      st.Merges,
		})
	}
	view.EntityCount = int(p.Engine().DistinctEntities())
	view.StartDate, view.EndDate = p.Engine().TimeRange()
	writeJSON(w, view)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(indexHTML))
}
