package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	storypivot "repro"
	"repro/internal/eval"
	"repro/internal/event"
	"repro/internal/obs"
)

// HTTP-layer instrumentation; the pipeline stages below report their
// own metrics.
var (
	metHTTPRequests = obs.GetCounter("storypivot_http_requests_total",
		"API requests served")
	metHTTPLat = obs.GetHistogram("storypivot_http_request_seconds",
		"API request latency")
)

// Server is the demonstration backend. It owns a set of available
// documents (Figure 3's document-selection module); the selected subset is
// run through a StoryPivot pipeline whose results the remaining modules
// expose. Adding a document ingests it incrementally; deselecting rebuilds
// the pipeline from the remaining selection, which mirrors the demo's
// "remove documents ... to explore how missing information affects the
// displayed stories" interaction (small interactive corpora make the
// rebuild instantaneous).
type Server struct {
	opts []storypivot.Option

	mu        sync.Mutex
	pipeline  *storypivot.Pipeline
	available []*storypivot.Document
	selected  map[string]bool // by URL
	ingestT   *eval.Timer
	alignT    *eval.Timer
}

// New creates a server; opts configure every pipeline it builds.
func New(opts ...storypivot.Option) (*Server, error) {
	p, err := storypivot.New(opts...)
	if err != nil {
		return nil, err
	}
	return &Server{
		opts:     opts,
		pipeline: p,
		selected: make(map[string]bool),
		ingestT:  eval.NewTimer(),
		alignT:   eval.NewTimer(),
	}, nil
}

// Preload registers documents as available (but not selected).
func (s *Server) Preload(docs ...*storypivot.Document) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.available = append(s.available, docs...)
}

// SelectAll selects every available document and ingests it.
func (s *Server) SelectAll() error {
	s.mu.Lock()
	urls := make([]string, 0, len(s.available))
	for _, d := range s.available {
		urls = append(urls, d.URL)
	}
	s.mu.Unlock()
	return s.Select(urls)
}

// Select replaces the selection with the given URLs and rebuilds the
// pipeline over them.
func (s *Server) Select(urls []string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	want := make(map[string]bool, len(urls))
	for _, u := range urls {
		want[u] = true
	}
	return s.rebuildLocked(want)
}

func (s *Server) rebuildLocked(want map[string]bool) error {
	p, err := storypivot.New(s.opts...)
	if err != nil {
		return err
	}
	old := s.pipeline
	s.pipeline = p
	s.selected = make(map[string]bool)
	for _, d := range s.available {
		if want[d.URL] {
			start := time.Now()
			if _, err := p.AddDocument(d); err != nil {
				continue // documents with no extractable content stay unselected
			}
			s.ingestT.Observe(time.Since(start))
			s.selected[d.URL] = true
		}
	}
	if old != nil {
		old.Close()
	}
	return nil
}

// AddDocument registers a new document, selects it, and ingests it
// incrementally.
func (s *Server) AddDocument(d *storypivot.Document) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, have := range s.available {
		if have.URL == d.URL {
			return fmt.Errorf("server: document %q already registered", d.URL)
		}
	}
	start := time.Now()
	if _, err := s.pipeline.AddDocument(d); err != nil {
		return err
	}
	s.ingestT.Observe(time.Since(start))
	s.available = append(s.available, d)
	s.selected[d.URL] = true
	return nil
}

// RemoveDocument deselects a document and rebuilds the pipeline without
// it. It reports whether the document was selected.
func (s *Server) RemoveDocument(url string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.selected[url] {
		return false, nil
	}
	want := make(map[string]bool, len(s.selected))
	for u := range s.selected {
		if u != url {
			want[u] = true
		}
	}
	return true, s.rebuildLocked(want)
}

// Pipeline returns the live pipeline (for embedding in other tools).
func (s *Server) Pipeline() *storypivot.Pipeline {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pipeline
}

// Handler returns the HTTP handler exposing the demo API and UI, plus
// the observability surface: /metrics (Prometheus text format),
// /debug/vars (expvar), and /debug/pprof.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	debug := obs.DebugMux()
	mux.Handle("GET /metrics", debug)
	mux.Handle("GET /debug/", debug)
	mux.HandleFunc("GET /api/documents", s.handleDocuments)
	mux.HandleFunc("POST /api/documents", s.handleAddDocument)
	mux.HandleFunc("POST /api/documents/select", s.handleSelect)
	mux.HandleFunc("DELETE /api/documents", s.handleRemoveDocument)
	mux.HandleFunc("GET /api/sources", s.handleSources)
	mux.HandleFunc("GET /api/stories", s.handleStories)
	mux.HandleFunc("GET /api/integrated", s.handleIntegrated)
	mux.HandleFunc("GET /api/integrated/{id}", s.handleIntegratedOne)
	mux.HandleFunc("GET /api/search", s.handleSearch)
	mux.HandleFunc("GET /api/timeline", s.handleTimeline)
	mux.HandleFunc("GET /api/context/{id}", s.handleContext)
	mux.HandleFunc("GET /api/profiles", s.handleProfiles)
	mux.HandleFunc("GET /api/trending", s.handleTrending)
	mux.HandleFunc("GET /api/stats", s.handleStats)
	mux.HandleFunc("GET /", s.handleIndex)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		span := metHTTPLat.Start()
		metHTTPRequests.Inc()
		mux.ServeHTTP(w, r)
		span.End()
	})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}

func (s *Server) handleDocuments(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DocumentView, 0, len(s.available))
	for _, d := range s.available {
		preview := d.Body
		if len(preview) > 140 {
			preview = preview[:140] + "..."
		}
		out = append(out, DocumentView{
			Source:    string(d.Source),
			URL:       d.URL,
			Title:     d.Title,
			Preview:   preview,
			Published: d.Published,
			Selected:  s.selected[d.URL],
		})
	}
	writeJSON(w, out)
}

func (s *Server) handleAddDocument(w http.ResponseWriter, r *http.Request) {
	var d storypivot.Document
	if err := json.NewDecoder(r.Body).Decode(&d); err != nil {
		httpError(w, http.StatusBadRequest, "invalid document JSON: "+err.Error())
		return
	}
	if err := s.AddDocument(&d); err != nil {
		httpError(w, http.StatusUnprocessableEntity, err.Error())
		return
	}
	writeJSON(w, map[string]string{"status": "added", "url": d.URL})
}

func (s *Server) handleSelect(w http.ResponseWriter, r *http.Request) {
	var req struct {
		URLs []string `json:"urls"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid selection JSON: "+err.Error())
		return
	}
	if err := s.Select(req.URLs); err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, map[string]any{"status": "selected", "count": len(req.URLs)})
}

func (s *Server) handleRemoveDocument(w http.ResponseWriter, r *http.Request) {
	url := r.URL.Query().Get("url")
	if url == "" {
		httpError(w, http.StatusBadRequest, "missing url parameter")
		return
	}
	ok, err := s.RemoveDocument(url)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	if !ok {
		httpError(w, http.StatusNotFound, "document not selected: "+url)
		return
	}
	writeJSON(w, map[string]string{"status": "removed", "url": url})
}

func (s *Server) handleSources(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Pipeline().Sources())
}

func (s *Server) handleStories(w http.ResponseWriter, r *http.Request) {
	src := r.URL.Query().Get("source")
	if src == "" {
		httpError(w, http.StatusBadRequest, "missing source parameter")
		return
	}
	stories := s.Pipeline().Stories(storypivot.SourceID(src))
	out := make([]StoryView, 0, len(stories))
	for _, st := range stories {
		out = append(out, storyView(st, r.URL.Query().Get("detail") == "1"))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	writeJSON(w, out)
}

func (s *Server) handleIntegrated(w http.ResponseWriter, _ *http.Request) {
	start := time.Now()
	res := s.Pipeline().Result()
	// eval.Timer is not safe for concurrent use; take the server lock
	// for the observation (the pipeline call above stays outside it).
	s.mu.Lock()
	s.alignT.Observe(time.Since(start))
	s.mu.Unlock()
	out := make([]IntegratedView, 0, len(res.Integrated()))
	for _, is := range res.Integrated() {
		out = append(out, integratedView(is, false))
	}
	writeJSON(w, out)
}

func (s *Server) handleIntegratedOne(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid story id")
		return
	}
	for _, is := range s.Pipeline().Result().Integrated() {
		if uint64(is.ID) == id {
			writeJSON(w, integratedView(is, true))
			return
		}
	}
	httpError(w, http.StatusNotFound, "no such integrated story")
}

// Pagination bounds for the query endpoints: requests without a limit
// get defaultPageLimit results; limit is capped at maxPageLimit so the
// server never serialises unbounded result sets.
const (
	defaultPageLimit = 50
	maxPageLimit     = 500
)

// pageParams parses offset/limit query parameters, applying the default
// and cap. It reports ok=false (after writing the error) on malformed
// values.
func pageParams(w http.ResponseWriter, r *http.Request) (offset, limit int, ok bool) {
	offset, limit = 0, defaultPageLimit
	if v := r.URL.Query().Get("offset"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			httpError(w, http.StatusBadRequest, "invalid offset parameter")
			return 0, 0, false
		}
		offset = n
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "invalid limit parameter")
			return 0, 0, false
		}
		limit = n
	}
	if limit > maxPageLimit {
		limit = maxPageLimit
	}
	return offset, limit, true
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query().Get("q")
	if q == "" {
		httpError(w, http.StatusBadRequest, "missing q parameter")
		return
	}
	offset, limit, ok := pageParams(w, r)
	if !ok {
		return
	}
	hits, total := s.Pipeline().SearchN(q, offset, limit)
	out := make([]IntegratedView, 0, len(hits))
	for _, is := range hits {
		out = append(out, integratedView(is, false))
	}
	writeJSON(w, SearchPageView{Total: total, Offset: offset, Limit: limit, Results: out})
}

func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request) {
	e := r.URL.Query().Get("entity")
	if e == "" {
		httpError(w, http.StatusBadRequest, "missing entity parameter")
		return
	}
	offset, limit, ok := pageParams(w, r)
	if !ok {
		return
	}
	sns, total := s.Pipeline().TimelineN(storypivot.Entity(e), offset, limit)
	out := make([]SnippetView, 0, len(sns))
	for _, sn := range sns {
		out = append(out, snippetView(sn, event.RoleUnknown))
	}
	writeJSON(w, TimelinePageView{Total: total, Offset: offset, Limit: limit, Results: out})
}

// handleContext resolves an integrated story's entities against the
// pipeline's knowledge base (paper §3: KB integration for story context).
func (s *Server) handleContext(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		httpError(w, http.StatusBadRequest, "invalid story id")
		return
	}
	p := s.Pipeline()
	if p.KnowledgeBase() == nil {
		httpError(w, http.StatusNotImplemented, "no knowledge base attached")
		return
	}
	for _, is := range p.Result().Integrated() {
		if uint64(is.ID) == id {
			writeJSON(w, p.Context(is))
			return
		}
	}
	httpError(w, http.StatusNotFound, "no such integrated story")
}

// handleProfiles serves the per-source reporting profiles (timeliness,
// coverage, exclusivity) derived from the current alignment.
func (s *Server) handleProfiles(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.Pipeline().SourceProfiles())
}

// TrendView is one row of the trending endpoint.
type TrendView struct {
	Story  IntegratedView `json:"story"`
	Recent int            `json:"recent"`
	Score  float64        `json:"score"`
}

// handleTrending ranks stories by recent activity relative to their own
// history. `now` defaults to the corpus's latest timestamp (demo corpora
// are historical, so wall-clock now would always be quiet); `window`
// accepts Go duration syntax (default 72h).
func (s *Server) handleTrending(w http.ResponseWriter, r *http.Request) {
	p := s.Pipeline()
	_, end := p.Engine().TimeRange()
	now := end
	if v := r.URL.Query().Get("now"); v != "" {
		t, err := time.Parse(time.RFC3339, v)
		if err != nil {
			httpError(w, http.StatusBadRequest, "invalid now (want RFC3339)")
			return
		}
		now = t
	}
	window := 72 * time.Hour
	if v := r.URL.Query().Get("window"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil || d <= 0 {
			httpError(w, http.StatusBadRequest, "invalid window duration")
			return
		}
		window = d
	}
	trends := p.Trending(now, window)
	out := make([]TrendView, 0, len(trends))
	for _, tr := range trends {
		out = append(out, TrendView{
			Story:  integratedView(tr.Story, false),
			Recent: tr.Recent,
			Score:  tr.Score,
		})
	}
	writeJSON(w, out)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	p := s.pipeline
	docCount := len(s.selected)
	ingestMean := s.ingestT.Mean()
	alignMean := s.alignT.Mean()
	s.mu.Unlock()

	res := p.Result()
	view := StatsView{
		Ingested:      p.Engine().Ingested(),
		Integrated:    len(res.Integrated()),
		MultiSource:   len(res.MultiSource()),
		Matches:       len(res.Matches()),
		AlignMeanMs:   float64(alignMean) / float64(time.Millisecond),
		IngestMeanUs:  float64(ingestMean) / float64(time.Microsecond),
		DocumentCount: docCount,
	}
	for _, src := range p.Sources() {
		id := p.Engine().Identifier(src)
		if id == nil {
			continue
		}
		st := id.Stats()
		view.Sources = append(view.Sources, SourceStatsView{
			Source:      string(src),
			Snippets:    st.Processed,
			Stories:     id.StoryCount(),
			Comparisons: st.Comparisons,
			Splits:      st.Splits,
			Merges:      st.Merges,
		})
	}
	view.EntityCount = int(p.Engine().DistinctEntities())
	view.StartDate, view.EndDate = p.Engine().TimeRange()
	writeJSON(w, view)
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	w.Write([]byte(indexHTML))
}
