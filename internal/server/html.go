package server

// indexHTML is the embedded single-page demo UI. It mirrors the paper's
// module structure: document selection (Figure 3), story overview
// (Figure 4), stories per source (Figure 5), snippets per story
// (Figure 6), and statistics (Figure 7). The page is dependency-free
// vanilla JS talking to the JSON API.
const indexHTML = `<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>StoryPivot</title>
<style>
  :root { --ink:#1f2430; --muted:#697186; --line:#d9dde7; --accent:#2457a6; --bg:#f6f7fa; }
  * { box-sizing: border-box; }
  body { font: 14px/1.5 system-ui, sans-serif; color: var(--ink); background: var(--bg); margin: 0; }
  header { background: var(--accent); color: #fff; padding: 12px 24px; display:flex; align-items:baseline; gap:16px; }
  header h1 { font-size: 20px; margin: 0; }
  header span { opacity:.8; font-size:12px; }
  main { display: grid; grid-template-columns: 1fr 1fr; gap: 16px; padding: 16px 24px; max-width: 1280px; margin: 0 auto; }
  section { background:#fff; border:1px solid var(--line); border-radius:8px; padding:14px 16px; }
  section.wide { grid-column: 1 / -1; }
  h2 { font-size:15px; margin:0 0 10px; color: var(--accent); }
  table { border-collapse: collapse; width:100%; font-size:13px; }
  th, td { text-align:left; padding:4px 8px; border-bottom:1px solid var(--line); vertical-align: top;}
  th { color:var(--muted); font-weight:600; }
  tr.sel { background:#eef3fb; }
  .pill { display:inline-block; background:#eef3fb; color:var(--accent); border-radius:10px; padding:0 8px; margin:1px 2px; font-size:12px; }
  .role-aligning { color:#1a7f37; } .role-enriching { color:#9a6700; }
  button { background:var(--accent); color:#fff; border:0; border-radius:6px; padding:5px 12px; cursor:pointer; }
  button.ghost { background:#fff; color:var(--accent); border:1px solid var(--accent); }
  .muted { color:var(--muted); }
  input[type=text] { border:1px solid var(--line); border-radius:6px; padding:5px 8px; width:220px; }
  .row { display:flex; gap:8px; align-items:center; margin-bottom:8px; flex-wrap:wrap;}
</style>
</head>
<body>
<header><h1>StoryPivot</h1><span>comparing and contrasting story evolution &mdash; SIGMOD 2015 demo reproduction</span></header>
<main>
  <section class="wide">
    <h2>Document Selection</h2>
    <div class="row">
      <button onclick="selectAll()">Select all</button>
      <button class="ghost" onclick="selectNone()">Clear</button>
      <span class="muted" id="docCount"></span>
    </div>
    <table id="docs"><thead><tr><th></th><th>Source</th><th>Description</th><th>URL</th></tr></thead><tbody></tbody></table>
  </section>
  <section>
    <h2>Story Overview (aligned across sources)</h2>
    <table id="integrated"><thead><tr><th>Story</th><th>Sources</th><th>Entities</th><th>Snippets</th><th>Window</th></tr></thead><tbody></tbody></table>
  </section>
  <section>
    <h2>Stories per Source</h2>
    <div class="row"><select id="srcSel" onchange="loadStories()"></select></div>
    <table id="stories"><thead><tr><th>Story</th><th>Entities</th><th>Description</th><th>Snippets</th></tr></thead><tbody></tbody></table>
  </section>
  <section class="wide">
    <h2>Snippets per Story</h2>
    <div class="row"><span class="muted">Click a story above to inspect its snippets and their alignment roles.</span></div>
    <table id="snippets"><thead><tr><th>Snippet</th><th>Source</th><th>Time</th><th>Entities</th><th>Description</th><th>Role</th></tr></thead><tbody></tbody></table>
  </section>
  <section>
    <h2>Knowledge-Base Context</h2>
    <div class="row"><span class="muted">Entities of the selected story, resolved against the knowledge base.</span></div>
    <table id="kbctx"><thead><tr><th>Entity</th><th>Type</th><th>About</th></tr></thead><tbody></tbody></table>
    <div id="kblinks" class="muted"></div>
  </section>
  <section>
    <h2>Source Profiles</h2>
    <table id="profiles"><thead><tr><th>Source</th><th>Coverage</th><th>Mean lag</th><th>Firsts</th><th>Exclusive</th></tr></thead><tbody></tbody></table>
  </section>
  <section class="wide">
    <h2>Statistics</h2>
    <div class="row"><span id="statsLine" class="muted"></span></div>
    <table id="stats"><thead><tr><th>Source</th><th>Snippets</th><th>Stories</th><th>Comparisons</th><th>Splits</th><th>Merges</th></tr></thead><tbody></tbody></table>
  </section>
</main>
<script>
async function j(url, opts) { const r = await fetch(url, opts); return r.json(); }
function esc(s){ const d=document.createElement('div'); d.textContent=s??''; return d.innerHTML; }

async function loadDocs() {
  const docs = await j('/api/documents');
  const tb = document.querySelector('#docs tbody'); tb.innerHTML='';
  document.getElementById('docCount').textContent = docs.filter(d=>d.selected).length + ' of ' + docs.length + ' selected';
  for (const d of docs) {
    const tr = document.createElement('tr'); if (d.selected) tr.className='sel';
    tr.innerHTML = '<td><input type="checkbox" '+(d.selected?'checked':'')+' onchange="toggleDoc(\''+d.url+'\', this.checked)"></td>'+
      '<td>'+esc(d.source)+'</td><td><b>'+esc(d.title)+'</b><br><span class="muted">'+esc(d.preview)+'</span></td><td class="muted">'+esc(d.url)+'</td>';
    tb.appendChild(tr);
  }
}
async function currentSelection() {
  const docs = await j('/api/documents');
  return docs.filter(d=>d.selected).map(d=>d.url);
}
async function toggleDoc(url, on) {
  const sel = await currentSelection();
  const next = on ? [...sel, url] : sel.filter(u=>u!==url);
  await j('/api/documents/select', {method:'POST', body: JSON.stringify({urls: next})});
  refresh();
}
async function selectAll() {
  const docs = await j('/api/documents');
  await j('/api/documents/select', {method:'POST', body: JSON.stringify({urls: docs.map(d=>d.url)})});
  refresh();
}
async function selectNone() {
  await j('/api/documents/select', {method:'POST', body: JSON.stringify({urls: []})});
  refresh();
}
async function loadIntegrated() {
  const list = await j('/api/integrated');
  const tb = document.querySelector('#integrated tbody'); tb.innerHTML='';
  for (const s of list) {
    const tr = document.createElement('tr');
    tr.style.cursor='pointer';
    tr.onclick = () => loadSnippets(s.id);
    tr.innerHTML = '<td>c&prime;'+s.id+'</td><td>'+(s.sources||[]).map(x=>'<span class="pill">'+esc(x)+'</span>').join('')+'</td>'+
      '<td>'+(s.entities||[]).slice(0,4).map(e=>'<span class="pill">'+esc(e.entity)+','+e.count+'</span>').join('')+'</td>'+
      '<td>'+s.snippets+'</td><td class="muted">'+s.start.slice(0,10)+' &rarr; '+s.end.slice(0,10)+'</td>';
    tb.appendChild(tr);
  }
}
async function loadSources() {
  const list = await j('/api/sources');
  const sel = document.getElementById('srcSel'); sel.innerHTML='';
  for (const s of list) { const o=document.createElement('option'); o.value=o.textContent=s; sel.appendChild(o); }
  if (list.length) loadStories();
}
async function loadStories() {
  const src = document.getElementById('srcSel').value; if (!src) return;
  const list = await j('/api/stories?source='+encodeURIComponent(src));
  const tb = document.querySelector('#stories tbody'); tb.innerHTML='';
  for (const s of list) {
    const tr = document.createElement('tr');
    tr.innerHTML = '<td>c'+s.id+'</td><td>'+(s.entities||[]).slice(0,4).map(e=>'<span class="pill">'+esc(e.entity)+','+e.count+'</span>').join('')+'</td>'+
      '<td class="muted">'+(s.description||[]).slice(0,5).map(t=>esc(t.token)).join(', ')+'</td><td>'+s.snippets+'</td>';
    tb.appendChild(tr);
  }
}
async function loadContext(id) {
  const tb = document.querySelector('#kbctx tbody'); tb.innerHTML='';
  const linksEl = document.getElementById('kblinks'); linksEl.textContent='';
  try {
    const r = await fetch('/api/context/'+id);
    if (!r.ok) return;
    const ctx = await r.json();
    for (const rec of (ctx.Known||[])) {
      const tr = document.createElement('tr');
      tr.innerHTML = '<td><span class="pill">'+esc(rec.id)+'</span></td><td>'+esc(rec.type)+'</td><td class="muted">'+esc(rec.abstract||'')+'</td>';
      tb.appendChild(tr);
    }
    const links = (ctx.Links||[]).map(l=>l.Subject+' →'+l.Predicate+'→ '+l.Object);
    if (links.length) linksEl.textContent = 'relations: ' + links.join('; ');
  } catch (e) { /* no KB attached */ }
}
async function loadProfiles() {
  const tb = document.querySelector('#profiles tbody'); tb.innerHTML='';
  const list = await j('/api/profiles');
  for (const p of list) {
    const tr = document.createElement('tr');
    const lagH = (p.MeanLag||0)/3.6e12;
    tr.innerHTML = '<td>'+esc(p.Source)+'</td><td>'+((p.Coverage||0)*100).toFixed(0)+'%</td>'+
      '<td>'+lagH.toFixed(1)+'h</td><td>'+(p.FirstReports||0)+'</td><td>'+((p.Exclusivity||0)*100).toFixed(0)+'%</td>';
    tb.appendChild(tr);
  }
}
async function loadSnippets(id) {
  loadContext(id);
  const s = await j('/api/integrated/'+id);
  const tb = document.querySelector('#snippets tbody'); tb.innerHTML='';
  for (const sn of (s.snippetList||[])) {
    const tr = document.createElement('tr');
    tr.innerHTML = '<td>v'+sn.id+'</td><td>'+esc(sn.source)+'</td><td class="muted">'+sn.timestamp.slice(0,10)+'</td>'+
      '<td>'+(sn.entities||[]).map(e=>'<span class="pill">'+esc(e)+'</span>').join('')+'</td>'+
      '<td class="muted">'+(sn.description||[]).slice(0,6).join(', ')+'</td>'+
      '<td class="role-'+esc(sn.role)+'">'+esc(sn.role||'')+'</td>';
    tb.appendChild(tr);
  }
}
async function loadStats() {
  const s = await j('/api/stats');
  document.getElementById('statsLine').textContent =
    s.ingested+' snippets | '+s.integratedStories+' integrated stories ('+s.multiSourceStories+' multi-source) | '+
    s.matches+' matches | ingest mean '+(s.ingestMeanMicros||0).toFixed(0)+'us | align mean '+(s.alignMeanMs||0).toFixed(1)+'ms';
  const tb = document.querySelector('#stats tbody'); tb.innerHTML='';
  for (const r of (s.sources||[])) {
    const tr = document.createElement('tr');
    tr.innerHTML = '<td>'+esc(r.source)+'</td><td>'+r.snippets+'</td><td>'+r.stories+'</td><td>'+r.comparisons+'</td><td>'+r.splits+'</td><td>'+r.merges+'</td>';
    tb.appendChild(tr);
  }
}
async function refresh() { await loadDocs(); await loadIntegrated(); await loadSources(); await loadStats(); await loadProfiles(); }
refresh();
</script>
</body>
</html>
`
