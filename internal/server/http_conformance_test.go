package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	storypivot "repro"
	"repro/internal/httpx"
	"repro/internal/qcache"
	"repro/internal/quota"
)

// newCachedTestServer is newTestServer plus a cache with no expiry, so
// conformance tests observe pure Gen-delta invalidation.
func newCachedTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	s.EnableCache(qcache.Config{TTL: -1, MaxEntries: -1, SweepInterval: -1})
	s.Preload(demoDocs()...)
	if err := s.SelectAll(); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// doGet issues a GET with optional headers and returns the full
// response (body drained and closed).
func doGet(t *testing.T, url string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestCacheHitHeaders: the first fetch computes and stores (MISS), the
// second is served from cache (HIT) byte-identically, with a stable
// ETag and Vary: X-API-Key on both.
func TestCacheHitHeaders(t *testing.T) {
	_, ts := newCachedTestServer(t)
	u := ts.URL + "/api/search?q=ukraine"

	r1, b1 := doGet(t, u, nil)
	if x := r1.Header.Get("X-Cache"); x != "MISS" {
		t.Fatalf("first fetch X-Cache = %q, want MISS", x)
	}
	r2, b2 := doGet(t, u, nil)
	if x := r2.Header.Get("X-Cache"); x != "HIT" {
		t.Fatalf("second fetch X-Cache = %q, want HIT", x)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("cached body differs from computed body")
	}
	e1, e2 := r1.Header.Get("ETag"), r2.Header.Get("ETag")
	if e1 == "" || e1 != e2 {
		t.Fatalf("ETag unstable across identical snapshots: %q vs %q", e1, e2)
	}
	for _, r := range []*http.Response{r1, r2} {
		if v := r.Header.Get("Vary"); v != "X-API-Key" {
			t.Fatalf("Vary = %q, want X-API-Key", v)
		}
	}
}

// TestIfNoneMatch304 covers conditional requests on both serve paths:
// a HIT revalidation and a MISS whose freshly computed ETag matches.
// 304s carry no body; weak-comparison forms (W/ prefix, list, *) match.
func TestIfNoneMatch304(t *testing.T) {
	_, ts := newCachedTestServer(t)
	u := ts.URL + "/api/timeline?entity=UKR"

	// Learn the ETag without storing anything (no-store), then send a
	// conditional request that takes the MISS path: the handler must
	// compute, store, and still answer 304.
	r0, _ := doGet(t, u, map[string]string{"Cache-Control": "no-store"})
	etag := r0.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on fresh response")
	}
	r1, b1 := doGet(t, u, map[string]string{"If-None-Match": etag})
	if r1.StatusCode != http.StatusNotModified || len(b1) != 0 {
		t.Fatalf("miss-path conditional = %d with %d body bytes, want 304 empty", r1.StatusCode, len(b1))
	}
	if x := r1.Header.Get("X-Cache"); x != "MISS" {
		t.Fatalf("miss-path conditional X-Cache = %q, want MISS", x)
	}

	// The entry is now stored; conditional requests revalidate on HIT.
	for _, inm := range []string{etag, "W/" + etag, `"bogus", ` + etag, "*"} {
		r, b := doGet(t, u, map[string]string{"If-None-Match": inm})
		if r.StatusCode != http.StatusNotModified || len(b) != 0 {
			t.Fatalf("If-None-Match %q = %d with %d body bytes, want 304 empty", inm, r.StatusCode, len(b))
		}
		if r.Header.Get("ETag") != etag {
			t.Fatalf("304 lost its ETag header (If-None-Match %q)", inm)
		}
	}
	// A non-matching validator gets the full 200.
	r2, b2 := doGet(t, u, map[string]string{"If-None-Match": `"0000000000000000"`})
	if r2.StatusCode != http.StatusOK || len(b2) == 0 {
		t.Fatalf("mismatched validator = %d with %d body bytes, want full 200", r2.StatusCode, len(b2))
	}
}

// TestETagChangesAfterRelevantIngest: ingesting a document that touches
// the queried entity invalidates the entry, so a conditional request
// with the stale validator gets a full 200 with a new ETag.
func TestETagChangesAfterRelevantIngest(t *testing.T) {
	s, ts := newCachedTestServer(t)
	u := ts.URL + "/api/timeline?entity=UKR"

	r1, _ := doGet(t, u, nil)
	etag1 := r1.Header.Get("ETag")
	if r2, _ := doGet(t, u, nil); r2.Header.Get("X-Cache") != "HIT" {
		t.Fatal("entry not cached before ingest")
	}

	if _, _, err := s.AddDocument(&storypivot.Document{
		Source: "nyt", URL: "http://nytimes.com/doc9.html", Published: day(19),
		Title: "Rebels Hand Over Black Boxes",
		Body:  "Separatist leaders in Ukraine handed over the black boxes from the plane that was shot down near Donetsk.",
	}); err != nil {
		t.Fatal(err)
	}

	r3, b3 := doGet(t, u, map[string]string{"If-None-Match": etag1})
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("stale validator after relevant ingest = %d, want 200 (stale 304!)", r3.StatusCode)
	}
	if x := r3.Header.Get("X-Cache"); x != "MISS" {
		t.Fatalf("post-ingest fetch X-Cache = %q, want MISS (entry should be invalidated)", x)
	}
	if etag3 := r3.Header.Get("ETag"); etag3 == etag1 {
		t.Fatalf("ETag unchanged after an ingest that altered the timeline: %s\nbody: %s", etag3, b3)
	}
}

// TestCacheControlBypass: no-cache skips the read but refreshes the
// entry (forced revalidation); no-store touches the cache not at all.
func TestCacheControlBypass(t *testing.T) {
	s, ts := newCachedTestServer(t)
	u := ts.URL + "/api/search?q=missile"

	// no-store on a cold URL computes but stores nothing.
	if r, _ := doGet(t, u, map[string]string{"Cache-Control": "no-store"}); r.Header.Get("X-Cache") != "BYPASS" {
		t.Fatalf("no-store X-Cache = %q, want BYPASS", r.Header.Get("X-Cache"))
	}
	if n := s.cache.Len(); n != 0 {
		t.Fatalf("no-store stored an entry: cache has %d", n)
	}

	// no-cache computes AND stores: the next normal fetch hits.
	if r, _ := doGet(t, u, map[string]string{"Cache-Control": "no-cache"}); r.Header.Get("X-Cache") != "BYPASS" {
		t.Fatalf("no-cache X-Cache = %q, want BYPASS", r.Header.Get("X-Cache"))
	}
	if r, _ := doGet(t, u, nil); r.Header.Get("X-Cache") != "HIT" {
		t.Fatalf("fetch after no-cache refresh X-Cache = %q, want HIT", r.Header.Get("X-Cache"))
	}

	// no-store with an entry present leaves it alone: still a HIT after.
	if r, _ := doGet(t, u, map[string]string{"Cache-Control": "no-store"}); r.Header.Get("X-Cache") != "BYPASS" {
		t.Fatal("no-store with warm entry did not bypass")
	}
	if r, _ := doGet(t, u, nil); r.Header.Get("X-Cache") != "HIT" {
		t.Fatal("no-store evicted the warm entry")
	}
}

// TestQuota429VsGate429 proves the two throttle responses are
// distinguishable: the per-tenant quota 429 is JSON with the tenant and
// a retry hint, the admission-gate 429 is the plain-text overload shed.
func TestQuota429VsGate429(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Preload(demoDocs()...)
	if err := s.SelectAll(); err != nil {
		t.Fatal(err)
	}
	s.EnableQuotas(quota.Limit{RPS: 0.0001, Burst: 1})

	// Hold a rebuild mid-flight to saturate a MaxInflight=1 gate.
	entered := make(chan struct{})
	release := make(chan struct{})
	s.rebuildHook = func() {
		close(entered)
		<-release
	}
	ts := httptest.NewServer(s.HandlerWith(httpx.Config{
		MaxInflight: 1,
		RetryAfter:  2 * time.Second,
		Quota:       s.QuotaMiddleware(),
	}))
	defer ts.Close()

	// Burst=1: the first request from this tenant consumes the bucket...
	del := make(chan struct{})
	go func() {
		defer close(del)
		req, _ := http.NewRequest(http.MethodDelete,
			ts.URL+"/api/documents?url=http://online.wsj.com/doc4.html", nil)
		req.Header.Set("X-API-Key", "writer")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	<-entered

	// ...so with the gate full, a second tenant-"writer" request is shed
	// by the gate (plain text), while tenant "reader" passes the gate?
	// No: the gate runs BEFORE quota, so while saturated EVERY request
	// sheds identically. That is the contrast under test.
	rGate, bGate := doGet(t, ts.URL+"/api/sources", map[string]string{"X-API-Key": "reader"})
	if rGate.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("gate shed = %d, want 429", rGate.StatusCode)
	}
	if ct := rGate.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("gate 429 Content-Type = %q, want text/plain", ct)
	}
	if !strings.Contains(string(bGate), "overloaded") {
		t.Fatalf("gate 429 body = %q", bGate)
	}
	if rGate.Header.Get("Retry-After") != "2" {
		t.Fatalf("gate Retry-After = %q, want 2", rGate.Header.Get("Retry-After"))
	}

	close(release)
	<-del

	// Gate free again: tenant "reader" spends its one banked token...
	if r, b := doGet(t, ts.URL+"/api/sources", map[string]string{"X-API-Key": "reader"}); r.StatusCode != http.StatusOK {
		t.Fatalf("first reader request = %d: %s", r.StatusCode, b)
	}
	// ...and the next is throttled by quota: JSON, tenant named, ceil'd
	// Retry-After.
	rQ, bQ := doGet(t, ts.URL+"/api/sources", map[string]string{"X-API-Key": "reader"})
	if rQ.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("quota throttle = %d, want 429", rQ.StatusCode)
	}
	if ct := rQ.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("quota 429 Content-Type = %q, want application/json", ct)
	}
	var tb struct {
		Error      string  `json:"error"`
		Tenant     string  `json:"tenant"`
		RetryAfter float64 `json:"retry_after_seconds"`
	}
	if err := json.Unmarshal(bQ, &tb); err != nil {
		t.Fatalf("quota 429 body not JSON: %v\n%s", err, bQ)
	}
	if tb.Error != "tenant quota exceeded" || tb.Tenant != "reader" || tb.RetryAfter <= 0 {
		t.Fatalf("quota 429 body = %+v", tb)
	}
	if rQ.Header.Get("Retry-After") == "" {
		t.Fatal("quota 429 missing Retry-After")
	}

	// Tenant isolation: a different key is not throttled.
	if r, _ := doGet(t, ts.URL+"/api/sources", map[string]string{"X-API-Key": "other"}); r.StatusCode != http.StatusOK {
		t.Fatalf("unthrottled tenant = %d, want 200", r.StatusCode)
	}
	// Admin endpoints are exempt: a throttled tenant can still raise its
	// own limit.
	if r, _ := doGet(t, ts.URL+"/api/admin/quotas", map[string]string{"X-API-Key": "reader"}); r.StatusCode != http.StatusOK {
		t.Fatalf("admin endpoint metered: %d", r.StatusCode)
	}
}

// TestQuotaAdminFlow drives GET/PUT /api/admin/quotas end to end: reads
// the config, applies a default + override update, sees enforcement
// change live, and clears the override.
func TestQuotaAdminFlow(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Preload(demoDocs()...)
	if err := s.SelectAll(); err != nil {
		t.Fatal(err)
	}
	s.EnableQuotas(quota.Limit{RPS: 100, Burst: 5})
	ts := httptest.NewServer(s.HandlerWith(httpx.Config{Quota: s.QuotaMiddleware()}))
	defer ts.Close()

	var snap quota.Snapshot
	getJSON(t, ts.URL+"/api/admin/quotas", &snap)
	if snap.Default.RPS != 100 || snap.Default.Burst != 5 || len(snap.Overrides) != 0 {
		t.Fatalf("initial snapshot = %+v", snap)
	}

	put := func(body string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest(http.MethodPut, ts.URL+"/api/admin/quotas", strings.NewReader(body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	// Shrink the default to one banked token, but give "gold" plenty.
	if resp := put(`{"default":{"rps":0.0001,"burst":1},"tenants":[{"tenant":"gold","rps":1000,"burst":100}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT = %d", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/api/admin/quotas", &snap)
	if snap.Default.Burst != 1 || len(snap.Overrides) != 1 || snap.Overrides[0].Tenant != "gold" {
		t.Fatalf("post-update snapshot = %+v", snap)
	}

	// The shrink applies live: anonymous gets one request then 429.
	if r, _ := doGet(t, ts.URL+"/api/sources", nil); r.StatusCode != http.StatusOK {
		t.Fatalf("first anonymous request = %d", r.StatusCode)
	}
	if r, _ := doGet(t, ts.URL+"/api/sources", nil); r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second anonymous request = %d, want 429", r.StatusCode)
	}
	// gold rides its override.
	for i := 0; i < 5; i++ {
		if r, _ := doGet(t, ts.URL+"/api/sources", map[string]string{"X-API-Key": "gold"}); r.StatusCode != http.StatusOK {
			t.Fatalf("gold request %d = %d", i, r.StatusCode)
		}
	}

	// Clearing the override drops gold to the (exhausted) default.
	if resp := put(`{"tenants":[{"tenant":"gold","clear":true}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT clear = %d", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/api/admin/quotas", &snap)
	if len(snap.Overrides) != 0 {
		t.Fatalf("override not cleared: %+v", snap)
	}
	if r, _ := doGet(t, ts.URL+"/api/sources", map[string]string{"X-API-Key": "gold"}); r.StatusCode != http.StatusOK {
		// gold starts a fresh default bucket with one banked token...
		t.Fatalf("gold first post-clear request = %d", r.StatusCode)
	}
	if r, _ := doGet(t, ts.URL+"/api/sources", map[string]string{"X-API-Key": "gold"}); r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("gold second post-clear request = %d, want 429", r.StatusCode)
	}

	// Malformed and invalid updates are rejected.
	if resp := put(`{"default":`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed PUT = %d, want 400", resp.StatusCode)
	}
	if resp := put(`{"tenants":[{"tenant":"","rps":1}]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty-tenant PUT = %d, want 400", resp.StatusCode)
	}

	// Quotas disabled: the endpoints 404.
	s2, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	if r, _ := doGet(t, ts2.URL+"/api/admin/quotas", nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("quotas-disabled GET = %d, want 404", r.StatusCode)
	}
}
