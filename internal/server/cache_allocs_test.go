package server

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/qcache"
)

// TestCacheHitAllocs pins the allocation profile of the cached serve
// paths. A hit re-runs neither the query nor the JSON encoder, so its
// cost is parsing the request, one cache lookup, and copying stored
// bytes to the wire; a 304 writes no body at all. The pins hold the
// hit path to fixed per-request overhead (request parse + recorder
// plumbing) — if a change re-introduces per-hit encoding or view
// building, these numbers jump by an order of magnitude.
func TestCacheHitAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation pins hold only in normal builds")
	}
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.EnableCache(qcache.Config{TTL: -1, MaxEntries: -1, SweepInterval: -1})
	s.Preload(demoDocs()...)
	if err := s.SelectAll(); err != nil {
		t.Fatal(err)
	}
	mux := s.rawMux()

	warm := httptest.NewRequest(http.MethodGet, "/api/search?q=ukraine&limit=10", nil)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, warm)
	if rec.Header().Get("X-Cache") != "MISS" {
		t.Fatalf("warmup X-Cache = %q", rec.Header().Get("X-Cache"))
	}
	etag := rec.Header().Get("ETag")

	cases := []struct {
		name string
		hdr  [2]string // optional header key/value
		code int
		max  float64
	}{
		// Full-body hit: request parse, lookup, header set, body copy.
		{"Hit200", [2]string{}, http.StatusOK, 30},
		// Conditional hit: same minus the body write.
		{"Hit304", [2]string{"If-None-Match", etag}, http.StatusNotModified, 30},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			run := func() *httptest.ResponseRecorder {
				req := httptest.NewRequest(http.MethodGet, "/api/search?q=ukraine&limit=10", nil)
				if tc.hdr[0] != "" {
					req.Header.Set(tc.hdr[0], tc.hdr[1])
				}
				rec := httptest.NewRecorder()
				mux.ServeHTTP(rec, req)
				return rec
			}
			rec := run()
			if rec.Code != tc.code || rec.Header().Get("X-Cache") != "HIT" {
				t.Fatalf("status %d X-Cache %q, want %d HIT", rec.Code, rec.Header().Get("X-Cache"), tc.code)
			}
			got := testing.AllocsPerRun(200, func() { run() })
			t.Logf("%s: %.1f allocs/op", tc.name, got)
			if got > tc.max {
				t.Errorf("%s allocates %.1f per op, pinned at %.0f — did the hit path regain encoding?",
					tc.name, got, tc.max)
			}
		})
	}
}
