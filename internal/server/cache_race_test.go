package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	storypivot "repro"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/httpx"
	"repro/internal/qcache"
	"repro/internal/quota"
)

// TestCacheQuotaIngestRace is the -race gate for this PR's subsystems:
// HTTP query traffic (hits, misses, conditionals, bypasses) races feed
// ingest (which publishes and invalidates), a mid-stream RemoveSource,
// the cache's expiry sweeper and capacity evictions, and live quota
// reconfiguration through the admin endpoint. It asserts no data races
// (the detector), no panics, and that every response is one of the
// statuses the stack can legitimately produce.
func TestCacheQuotaIngestRace(t *testing.T) {
	corpus := datagen.Generate(experiments.CorpusScale(600, 4, 29))
	s, err := New(storypivot.WithRefinement(true), storypivot.WithAutoAlign(64))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Aggressive TTL, sweeper, and a small capacity so expiry sweeps and
	// evictions run concurrently with everything else.
	s.EnableCache(qcache.Config{TTL: 20 * time.Millisecond, Shards: 4,
		MaxEntries: 256, SweepInterval: 5 * time.Millisecond})
	s.EnableQuotas(quota.Limit{RPS: 1e6, Burst: 1000})
	ts := httptest.NewServer(s.HandlerWith(httpx.Config{Quota: s.QuotaMiddleware()}))
	defer ts.Close()

	bySource := corpus.BySource()
	ent := string(corpus.Snippets[0].Entities[0])
	query := corpus.Snippets[0].Terms[0].Token
	var victim storypivot.SourceID
	for src := range bySource {
		victim = src
		break
	}

	var writers sync.WaitGroup
	for src, sns := range bySource {
		src, sns := src, sns
		writers.Add(1)
		go func() {
			defer writers.Done()
			for i, sn := range sns {
				if err := s.Pipeline().Ingest(sn); err != nil {
					t.Errorf("ingest %s: %v", src, err)
					return
				}
				if src == victim && i == len(sns)/2 {
					s.Pipeline().RemoveSource(victim)
				}
			}
		}()
	}

	done := make(chan struct{})
	urls := []string{
		"/api/search?" + url.Values{"q": {query}}.Encode(),
		"/api/search?" + url.Values{"q": {query}, "limit": {"5"}}.Encode(),
		"/api/timeline?" + url.Values{"entity": {ent}}.Encode(),
		"/api/timeline?" + url.Values{"entity": {ent}, "offset": {"3"}, "limit": {"4"}}.Encode(),
	}
	var readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		readers.Add(1)
		go func() {
			defer readers.Done()
			tenant := fmt.Sprintf("reader-%d", w)
			etag := ""
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				req, _ := http.NewRequest(http.MethodGet, ts.URL+urls[i%len(urls)], nil)
				req.Header.Set("X-API-Key", tenant)
				switch i % 4 {
				case 1:
					req.Header.Set("Cache-Control", "no-cache")
				case 2:
					req.Header.Set("Cache-Control", "no-store")
				case 3:
					if etag != "" {
						req.Header.Set("If-None-Match", etag)
					}
				}
				resp, err := http.DefaultClient.Do(req)
				if err != nil {
					t.Errorf("reader %d: %v", w, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK, http.StatusNotModified, http.StatusTooManyRequests:
				default:
					t.Errorf("reader %d: unexpected status %d on %s", w, resp.StatusCode, urls[i%len(urls)])
					return
				}
				if e := resp.Header.Get("ETag"); e != "" {
					etag = e
				}
			}
		}()
	}

	// Admin churn: rewrite the default and per-reader overrides, clear
	// them, and read the snapshot back, all while enforcement runs.
	readers.Add(1)
	go func() {
		defer readers.Done()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			default:
			}
			var body string
			switch i % 3 {
			case 0:
				body = fmt.Sprintf(`{"default":{"rps":%d,"burst":%d}}`, 1e6+i, 500+i%500)
			case 1:
				body = fmt.Sprintf(`{"tenants":[{"tenant":"reader-%d","rps":1e6,"burst":2000}]}`, i%4)
			case 2:
				body = fmt.Sprintf(`{"tenants":[{"tenant":"reader-%d","clear":true}]}`, i%4)
			}
			req, _ := http.NewRequest(http.MethodPut, ts.URL+"/api/admin/quotas", strings.NewReader(body))
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Errorf("admin PUT: %v", err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Errorf("admin PUT = %d", resp.StatusCode)
				return
			}
			if i%5 == 0 {
				r, err := http.Get(ts.URL + "/api/admin/quotas")
				if err != nil {
					t.Errorf("admin GET: %v", err)
					return
				}
				io.Copy(io.Discard, r.Body)
				r.Body.Close()
			}
		}
	}()

	writers.Wait()
	close(done)
	readers.Wait()
}
