package server

import (
	"encoding/json"
	"net/http"

	"repro/internal/feed"
	"repro/internal/retire"
)

// FeedsView is the GET /api/feeds response: the manager-level rollup
// plus every per-source runner snapshot.
type FeedsView struct {
	Draining    bool                `json:"draining"`
	Healthy     int                 `json:"healthy"`
	Degraded    int                 `json:"degraded"`
	Quarantined int                 `json:"quarantined"`
	DLQDepth    int                 `json:"dlq_depth"`
	Sources     []feed.SourceStatus `json:"sources"`
}

// HealthView is the GET /healthz response body.
type HealthView struct {
	Status      string `json:"status"`
	Healthy     int    `json:"healthy,omitempty"`
	Degraded    int    `json:"degraded,omitempty"`
	Quarantined int    `json:"quarantined,omitempty"`
	// Window reports retirement state when the pipeline runs with a
	// bounded story window; operators read resident/archived counts off
	// the probe they already scrape.
	Window *retire.View `json:"window,omitempty"`
}

// AttachFeeds exposes a feed manager on /api/feeds and folds its health
// into /healthz. Call before serving; the server does not take
// ownership (the cmd owns the manager's Close, because drain ordering —
// stop HTTP, drain feeds, close pipeline — is a process concern).
func (s *Server) AttachFeeds(m *feed.Manager) {
	s.feeds.Store(m)
}

// Feeds returns the attached feed manager, or nil.
func (s *Server) Feeds() *feed.Manager {
	return s.feeds.Load()
}

func (s *Server) handleFeeds(w http.ResponseWriter, _ *http.Request) {
	m := s.feeds.Load()
	if m == nil {
		httpError(w, http.StatusNotFound, "no feed manager attached")
		return
	}
	h, d, q := m.StateCounts()
	view := FeedsView{
		Draining:    m.Draining(),
		Healthy:     h,
		Degraded:    d,
		Quarantined: q,
		Sources:     m.Status(),
	}
	if dlq := m.DLQ(); dlq != nil {
		view.DLQDepth = dlq.Len()
	}
	writeJSON(w, view)
}

// handleHealthz is the load-balancer probe. 503 means "stop routing
// here": the process is draining (or closed), or every feed source is
// quarantined so the ingest plane is effectively down. A degraded
// source alone stays 200 — backoff is handling it.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	view := HealthView{Status: "ok"}
	code := http.StatusOK
	if m := s.feeds.Load(); m != nil {
		view.Healthy, view.Degraded, view.Quarantined = m.StateCounts()
		switch {
		case m.Draining():
			view.Status = "draining"
			code = http.StatusServiceUnavailable
		case view.Quarantined > 0 && view.Healthy == 0 && view.Degraded == 0:
			view.Status = "quarantined"
			code = http.StatusServiceUnavailable
		case view.Degraded > 0 || view.Quarantined > 0:
			view.Status = "degraded"
		}
	}
	if m := s.Pipeline().Retire(); m != nil {
		v := m.Snapshot()
		view.Window = &v
	}
	if s.closed.Load() {
		view.Status = "closed"
		code = http.StatusServiceUnavailable
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(view)
}
