package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	storypivot "repro"
	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/text"
)

// tierDiffCorpus builds a synthetic corpus whose snippets carry display
// text and a document URL, so the tiered pipeline's hydration path is
// actually exercised: datagen terms and entities drive matching, while
// the text is render-only payload the tiers strip from the engine.
func tierDiffCorpus(size, sources int, seed int64) *datagen.Corpus {
	c := datagen.Generate(experiments.CorpusScale(size, sources, seed))
	for _, sn := range c.Snippets {
		sn.Text = fmt.Sprintf("display text of snippet %d from %s", sn.ID, sn.Source)
		sn.Document = fmt.Sprintf("http://%s/doc%d.html", sn.Source, sn.ID)
	}
	return c
}

// tierDiffEntities picks the most frequent corpus entities plus a miss.
func tierDiffEntities(c *datagen.Corpus, n int) []string {
	freq := map[string]int{}
	for _, sn := range c.Snippets {
		for _, e := range sn.Entities {
			freq[string(e)]++
		}
	}
	out := []string{"no_such_entity_zzz"}
	for len(out) < n {
		best, bestN := "", -1
		for e, k := range freq {
			if k > bestN || (k == bestN && e < best) {
				best, bestN = e, k
			}
		}
		if bestN < 0 {
			break
		}
		delete(freq, best)
		out = append(out, best)
	}
	return out
}

// tierDiffQueries builds free-text queries from corpus tokens that
// survive the text pipeline unchanged, plus a guaranteed miss.
func tierDiffQueries(c *datagen.Corpus, n int) []string {
	seen := map[string]bool{}
	out := []string{"zzzzqq xqqqz"}
	for _, sn := range c.Snippets {
		for _, tm := range sn.Terms {
			if seen[tm.Token] || len(out) >= n {
				continue
			}
			seen[tm.Token] = true
			if toks := text.Pipeline(tm.Token); len(toks) == 1 && toks[0] == tm.Token {
				out = append(out, tm.Token)
			}
		}
	}
	return out
}

func fetchRaw(t *testing.T, base, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestTieredServerDifferential is the correctness oracle of the tiered
// snippet store at the API boundary: two servers ingest the same corpus
// — one all-in-memory, one with the hot/warm/cold chunk tiers sized so
// most chunks go cold and compressed — and every query endpoint must
// return byte-identical responses. The tiers may move payload bytes
// between memory, mmap, and gzip; they may never change a response.
func TestTieredServerDifferential(t *testing.T) {
	for _, seed := range []int64{7, 21, 63} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			corpus := tierDiffCorpus(400, 3, seed)

			flat, err := New()
			if err != nil {
				t.Fatal(err)
			}
			defer flat.Close()
			tiered, err := New(
				storypivot.WithStorage(t.TempDir()),
				storypivot.WithTieredStorage(2, 2, true),
				storypivot.WithTierChunkRows(32),
				storypivot.WithTierColdCache(1, 2),
			)
			if err != nil {
				t.Fatal(err)
			}
			defer tiered.Close()

			for _, sn := range corpus.Snippets {
				if err := flat.Pipeline().Ingest(sn.Clone()); err != nil {
					t.Fatal(err)
				}
				if err := tiered.Pipeline().Ingest(sn); err != nil {
					t.Fatal(err)
				}
			}
			flat.Pipeline().Result()
			tiered.Pipeline().Result()
			if st, ok := tiered.Pipeline().TierStats(); !ok || st.Cold == 0 {
				t.Fatalf("tiered pipeline has no cold chunks; differential exercises nothing: %+v", st)
			}

			tsFlat := httptest.NewServer(flat.Handler())
			defer tsFlat.Close()
			tsTiered := httptest.NewServer(tiered.Handler())
			defer tsTiered.Close()

			var paths []string
			for _, e := range tierDiffEntities(corpus, 6) {
				q := url.QueryEscape(e)
				paths = append(paths,
					"/api/timeline?entity="+q+"&limit=500",
					"/api/stories/by-entity?entity="+q+"&limit=500",
					"/api/stories/by-entity?entity="+q+"&scores=1",
				)
			}
			for _, q := range tierDiffQueries(corpus, 5) {
				paths = append(paths, "/api/search?q="+url.QueryEscape(q)+"&limit=500")
			}
			paths = append(paths, "/api/integrated", "/api/stories", "/api/trending")

			// Detail views hydrate member snippet text from the tiers.
			var integrated []struct {
				ID uint64 `json:"id"`
			}
			_, body := fetchRaw(t, tsFlat.URL, "/api/integrated")
			if err := json.Unmarshal(body, &integrated); err != nil {
				t.Fatal(err)
			}
			if len(integrated) == 0 {
				t.Fatal("no integrated stories; differential exercises nothing")
			}
			for i, is := range integrated {
				if i >= 5 {
					break
				}
				paths = append(paths, fmt.Sprintf("/api/integrated/%d", is.ID))
			}

			for _, path := range paths {
				codeF, bodyF := fetchRaw(t, tsFlat.URL, path)
				codeT, bodyT := fetchRaw(t, tsTiered.URL, path)
				if codeF != codeT {
					t.Fatalf("%s: status %d (flat) vs %d (tiered)", path, codeF, codeT)
				}
				if string(bodyF) != string(bodyT) {
					t.Fatalf("%s: responses diverge\nflat:   %.300s\ntiered: %.300s", path, bodyF, bodyT)
				}
			}
		})
	}
}
