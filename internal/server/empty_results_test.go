package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
)

// TestEmptyResultsSerialiseAsArray pins the empty-result contract of
// every paged query endpoint: zero hits serialise as `"results": []`,
// never `"results": null`. Clients (and the cluster router, which
// decodes worker envelopes) rely on the field always being an array.
func TestEmptyResultsSerialiseAsArray(t *testing.T) {
	_, ts := newTestServer(t)
	for _, tc := range []struct {
		name, path string
	}{
		{"search miss", "/api/search?q=zzzzqqq"},
		{"search deep offset", "/api/search?q=missile&offset=9000&deep=1"},
		{"timeline miss", "/api/timeline?entity=NO_SUCH_ENTITY"},
		{"timeline past end", "/api/timeline?entity=UKR&offset=100000"},
		{"by-entity miss", "/api/stories/by-entity?entity=NO_SUCH_ENTITY"},
		{"by-entity past end", "/api/stories/by-entity?entity=UKR&offset=100000"},
		// offset+limit overflows int: the window is empty but the
		// envelope must still carry the true total, not panic or 400.
		{"search overflow offset", "/api/search?q=missile&offset=9223372036854775800&limit=500"},
		{"timeline overflow offset", "/api/timeline?entity=UKR&offset=9223372036854775800&limit=500"},
		{"by-entity overflow offset", "/api/stories/by-entity?entity=UKR&offset=9223372036854775800&limit=500"},
	} {
		resp, err := http.Get(ts.URL + tc.path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc.name, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), `"results": []`) {
			t.Errorf("%s: body lacks `\"results\": []`:\n%s", tc.name, body)
		}
		if strings.Contains(string(body), "null") {
			t.Errorf("%s: body contains null:\n%s", tc.name, body)
		}
	}
}

// TestStoriesByEntityEndpoint pins the /api/stories/by-entity envelope:
// SearchPageView shape, ranked hits, and a populated scores side channel
// only when scores=1 is requested.
func TestStoriesByEntityEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	var page struct {
		Total   int `json:"total"`
		Results []struct {
			ID uint64 `json:"id"`
		} `json:"results"`
		Scores []float64 `json:"scores"`
	}
	getJSON(t, ts.URL+"/api/stories/by-entity?entity=UKR", &page)
	if page.Total == 0 || len(page.Results) == 0 {
		t.Fatalf("no hits for UKR: %+v", page)
	}
	if page.Scores != nil {
		t.Fatalf("scores present without scores=1: %v", page.Scores)
	}
	var scored struct {
		Results []struct {
			ID uint64 `json:"id"`
		} `json:"results"`
		Scores []float64 `json:"scores"`
	}
	getJSON(t, ts.URL+"/api/stories/by-entity?entity=UKR&scores=1", &scored)
	if len(scored.Scores) != len(scored.Results) {
		t.Fatalf("scores misaligned: %d scores for %d results", len(scored.Scores), len(scored.Results))
	}
	for i := 1; i < len(scored.Scores); i++ {
		if scored.Scores[i] > scored.Scores[i-1] {
			t.Fatalf("scores not descending: %v", scored.Scores)
		}
	}
	for i, r := range scored.Results {
		if r.ID != page.Results[i].ID {
			t.Fatalf("scores=1 changed ranking: %+v vs %+v", scored.Results, page.Results)
		}
	}
}

// TestPagedEnvelopeBoundaries pins the numeric edges of the paged
// envelopes: offset exactly at total is an empty page with the true
// total, and limit=0 (like any limit < 1) is rejected as invalid
// rather than treated as "no limit" — on every paged endpoint.
func TestPagedEnvelopeBoundaries(t *testing.T) {
	_, ts := newTestServer(t)

	var probe struct {
		Total int `json:"total"`
	}
	getJSON(t, ts.URL+"/api/stories/by-entity?entity=UKR", &probe)
	if probe.Total == 0 {
		t.Fatal("probe query has no hits; boundary test is vacuous")
	}
	var atEnd struct {
		Total   int               `json:"total"`
		Offset  int               `json:"offset"`
		Results []json.RawMessage `json:"results"`
	}
	getJSON(t, fmt.Sprintf("%s/api/stories/by-entity?entity=UKR&offset=%d", ts.URL, probe.Total), &atEnd)
	if atEnd.Total != probe.Total || atEnd.Offset != probe.Total || len(atEnd.Results) != 0 {
		t.Fatalf("offset==total page = %+v, want empty window with total %d", atEnd, probe.Total)
	}

	for _, path := range []string{
		"/api/search?q=missile&limit=0",
		"/api/timeline?entity=UKR&limit=0",
		"/api/stories/by-entity?entity=UKR&limit=0",
	} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400: %s", path, resp.StatusCode, body)
		}
		if !strings.Contains(string(body), "invalid limit") {
			t.Fatalf("%s: 400 body %q lacks the invalid-limit hint", path, body)
		}
	}
}
