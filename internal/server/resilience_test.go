package server

// Fault-injection tests for the serving-layer hardening: read handlers
// must not queue behind a slow deselect-rebuild, the paged endpoints
// must enforce their parameter contract with exact statuses, and
// writeJSON must commit a status only for complete bodies.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/httpx"
	"repro/internal/obs"
)

// TestReadsNotSerializedBehindRebuild parks a rebuild (via the
// fault-injection hook, which runs with the write lock held after
// ingest) and proves that query traffic keeps being answered from the
// previous snapshot the whole time — the acceptance criterion for the
// read/write lock split.
func TestReadsNotSerializedBehindRebuild(t *testing.T) {
	s, ts := newTestServer(t)

	blocker := faults.NewBlocker(1)
	s.rebuildHook = func() { blocker.Wait(nil) }
	defer blocker.Release()

	rebuildDone := make(chan error, 1)
	go func() {
		// Deselect one document: triggers a full rebuild that parks in
		// the hook while holding writeMu.
		_, err := s.RemoveDocument("http://online.wsj.com/doc4.html")
		rebuildDone <- err
	}()
	select {
	case <-blocker.Entered():
	case <-time.After(5 * time.Second):
		t.Fatal("rebuild never reached the hook")
	}

	// With the rebuild parked, every read endpoint must answer promptly
	// from the old snapshot. The client timeout is the serialization
	// detector: pre-split, these calls blocked until the rebuild lock
	// was released.
	client := &http.Client{Timeout: 2 * time.Second}
	reads := []string{
		"/api/integrated",
		"/api/search?q=plane+crash",
		"/api/timeline?entity=UKR",
		"/api/documents",
		"/api/sources",
		"/api/stats",
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(reads))
	for _, path := range reads {
		wg.Add(1)
		go func(path string) {
			defer wg.Done()
			resp, err := client.Get(ts.URL + path)
			if err != nil {
				errs <- fmt.Errorf("GET %s during rebuild: %w", path, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("GET %s during rebuild = %d", path, resp.StatusCode)
			}
		}(path)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	select {
	case err := <-rebuildDone:
		t.Fatalf("rebuild finished while parked (err=%v)", err)
	default:
	}

	// Release the rebuild; the new snapshot (minus the document) lands.
	blocker.Release()
	if err := <-rebuildDone; err != nil {
		t.Fatalf("rebuild failed: %v", err)
	}
	var docs []DocumentView
	getJSON(t, ts.URL+"/api/documents", &docs)
	for _, d := range docs {
		if d.URL == "http://online.wsj.com/doc4.html" && d.Selected {
			t.Fatal("removed document still selected after rebuild")
		}
	}
}

// TestConcurrentReadsDuringSelectChurn hammers reads while selections
// rebuild in a loop; combined with -race in CI this pins the snapshot
// discipline (readers on the old pipeline while the new one is built).
func TestConcurrentReadsDuringSelectChurn(t *testing.T) {
	s, ts := newTestServer(t)
	stop := make(chan struct{})
	var churn sync.WaitGroup
	churn.Add(1)
	go func() {
		defer churn.Done()
		all := []string{
			"http://nytimes.com/doc1.html", "http://nytimes.com/doc2.html",
			"http://online.wsj.com/doc3.html", "http://online.wsj.com/doc4.html",
		}
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				s.Select(all[:2])
			} else {
				s.Select(all)
			}
		}
	}()

	client := &http.Client{Timeout: 5 * time.Second}
	var readers sync.WaitGroup
	for w := 0; w < 4; w++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for i := 0; i < 25; i++ {
				resp, err := client.Get(ts.URL + "/api/integrated")
				if err != nil {
					t.Errorf("read during churn: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("read during churn = %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	readers.Wait()
	close(stop)
	churn.Wait()
}

// TestPageParamsHTTPMatrix pins the paged endpoints' parameter contract
// at the HTTP layer: exact status codes and envelope totals for the
// boundary cases.
func TestPageParamsHTTPMatrix(t *testing.T) {
	_, ts := newTestServer(t)

	// Reference totals.
	var full SearchPageView
	getJSON(t, ts.URL+"/api/search?q=plane+crash", &full)
	if full.Total == 0 {
		t.Fatal("reference search empty")
	}

	status := func(path string) int {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	// Malformed values: exact 400s on both paged endpoints.
	for _, path := range []string{
		"/api/search?q=x&limit=0",
		"/api/search?q=x&limit=-3",
		"/api/search?q=x&limit=abc",
		"/api/search?q=x&limit=1.5",
		"/api/search?q=x&offset=-1",
		"/api/search?q=x&offset=abc",
		"/api/timeline?entity=UKR&limit=0",
		"/api/timeline?entity=UKR&offset=-1",
		"/api/timeline?entity=UKR&offset=1e3",
	} {
		if got := status(path); got != http.StatusBadRequest {
			t.Errorf("GET %s = %d, want 400", path, got)
		}
	}

	// Offset past the total: 200 with an empty page and the true total.
	var beyond SearchPageView
	getJSON(t, fmt.Sprintf("%s/api/search?q=plane+crash&offset=%d", ts.URL, full.Total+5), &beyond)
	if len(beyond.Results) != 0 || beyond.Total != full.Total || beyond.Offset != full.Total+5 {
		t.Fatalf("beyond-end page = total %d offset %d results %d",
			beyond.Total, beyond.Offset, len(beyond.Results))
	}

	// The 500 cap boundary: 500 passes through, 501 clamps to 500.
	var at SearchPageView
	getJSON(t, ts.URL+"/api/search?q=plane+crash&limit=500", &at)
	if at.Limit != 500 {
		t.Fatalf("limit=500 reported as %d", at.Limit)
	}
	var over SearchPageView
	getJSON(t, ts.URL+"/api/search?q=plane+crash&limit=501", &over)
	if over.Limit != 500 {
		t.Fatalf("limit=501 not clamped: %d", over.Limit)
	}
	// Totals are invariant under paging.
	if at.Total != full.Total || over.Total != full.Total {
		t.Fatalf("totals drifted: %d/%d vs %d", at.Total, over.Total, full.Total)
	}
}

// failAfterWriter fails all writes, simulating a client that vanished
// between the handler starting and the response body going out.
type failAfterWriter struct {
	httptest.ResponseRecorder
}

func (w *failAfterWriter) Write([]byte) (int, error) {
	return 0, errors.New("connection reset by peer")
}

func TestWriteJSONRecordsWriteErrors(t *testing.T) {
	c := obs.GetCounter("storypivot_http_write_errors_total", "")
	before := c.Value()
	w := &failAfterWriter{ResponseRecorder: *httptest.NewRecorder()}
	writeJSON(w, map[string]string{"hello": "world"})
	if got := c.Value(); got != before+1 {
		t.Fatalf("write-error counter = %d, want %d", got, before+1)
	}
	// The status was committed before the body failed — the client got
	// headers, so instrumentation sees the code that was sent.
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d", w.Code)
	}
}

func TestWriteJSONEncodeFailureIs500(t *testing.T) {
	c := obs.GetCounter("storypivot_http_encode_errors_total", "")
	before := c.Value()
	rec := httptest.NewRecorder()
	// A channel is not JSON-encodable: the failure must surface as a
	// clean 500 error envelope, not a half-written 200.
	writeJSON(rec, map[string]any{"bad": make(chan int)})
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("encode failure = %d, want 500", rec.Code)
	}
	var e map[string]string
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e["error"] == "" {
		t.Fatalf("500 body not a clean error envelope: %q", rec.Body.String())
	}
	if got := c.Value(); got != before+1 {
		t.Fatalf("encode-error counter = %d, want %d", got, before+1)
	}
}

func TestWriteJSONSetsContentLength(t *testing.T) {
	rec := httptest.NewRecorder()
	writeJSON(rec, map[string]int{"n": 1})
	cl := rec.Header().Get("Content-Length")
	if cl == "" {
		t.Fatal("no Content-Length on buffered response")
	}
	if fmt.Sprint(rec.Body.Len()) != cl {
		t.Fatalf("Content-Length %s != body %d", cl, rec.Body.Len())
	}
}

// TestHandlerPanicContained drives a panic through the server's own
// Handler stack (Instrument → Recover → mux) via a poisoned route and
// confirms the demo API keeps serving.
func TestHandlerPanicContained(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	s.Preload(demoDocs()...)
	if err := s.SelectAll(); err != nil {
		t.Fatal(err)
	}
	// No shipped handler panics by design, so mount a panicking route
	// beside the API under the same recovery stack, mirroring how a
	// future buggy handler would behave.
	h := http.NewServeMux()
	h.Handle("/boom", faults.Panicking("handler bug"))
	h.Handle("/", s.rawMux())
	ts := httptest.NewServer(httpx.Chain(httpx.Instrument(), httpx.Recover())(h))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking route = %d, want 500", resp.StatusCode)
	}
	var list []IntegratedView
	getJSON(t, ts.URL+"/api/integrated", &list)
	if len(list) == 0 {
		t.Fatal("API dead after contained panic")
	}
}

// TestServerClose verifies Close is idempotent and stops the pipeline
// (index compactor included) while leaving already-held snapshots
// queryable — the shutdown-sequence contract.
func TestServerClose(t *testing.T) {
	s, ts := newTestServer(t)
	p := s.Pipeline()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// The engine and index stay queryable after Close (the drain window
	// may still have readers on the snapshot).
	if got := p.Engine().Ingested(); got == 0 {
		t.Fatal("snapshot unreadable after Close")
	}
	resp, err := http.Get(ts.URL + "/api/integrated")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("read after Close = %d", resp.StatusCode)
	}
}

// TestBodyLimitOn413 exercises HandlerWith's body cap end to end: an
// oversized document upload is rejected with 413, not decoded.
func TestBodyLimitOn413(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.HandlerWith(httpx.Config{MaxBodyBytes: 256}))
	defer ts.Close()

	big := `{"source":"x","url":"http://x/1","title":"t","body":"` +
		strings.Repeat("a", 4096) + `"}`
	resp, err := http.Post(ts.URL+"/api/documents", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload = %d, want 413", resp.StatusCode)
	}
}
