package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"

	storypivot "repro"
	"repro/internal/datagen"
	"repro/internal/event"
	"repro/internal/experiments"
	"repro/internal/qcache"
	"repro/internal/text"
)

// TestHTTPCacheCoherence is the HTTP-level twin of the pipeline-layer
// TestCacheCoherenceDifferential (repro root): it drives the real
// handlers — ETag computation, 304 logic, Cache-Control handling and
// all — over synthetic corpora with refinement on and a source removed
// mid-stream. At every checkpoint each panel URL is fetched twice with
// no ingest in between: once normally (may be served from cache, the
// interesting case) and once with Cache-Control: no-store (always a
// fresh compute at the same settled snapshot). The two responses must
// be byte-identical with identical ETags; a cached body that drifted
// from the live index would differ.
func TestHTTPCacheCoherence(t *testing.T) {
	for _, seed := range []int64{7, 21, 63} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			corpus := datagen.Generate(experiments.CorpusScale(400, 4, seed))
			s, err := New(storypivot.WithRefinement(true))
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			// No TTL, no cap, no sweeper: only Gen-delta invalidation
			// may drop entries, so a stale survivor cannot hide behind
			// an expiry.
			s.EnableCache(qcache.Config{TTL: -1, MaxEntries: -1, SweepInterval: -1})
			ts := httptest.NewServer(s.Handler())
			defer ts.Close()

			f := &httpFetcher{t: t, base: ts.URL, stored: map[string]int{}}
			entities := corpusEntities(corpus, 6)
			queries := corpusQueries(corpus, 4)

			removeAt := len(corpus.Snippets) * 3 / 5
			for i, sn := range corpus.Snippets {
				if err := s.Pipeline().Ingest(sn); err != nil {
					t.Fatal(err)
				}
				if i == removeAt {
					src := corpus.Snippets[0].Source
					if !s.Pipeline().RemoveSource(src) {
						t.Fatalf("RemoveSource(%s) had nothing to remove", src)
					}
					f.comparePanel(entities, queries, fmt.Sprintf("after RemoveSource(%s)", src))
				}
				if (i+1)%100 == 0 {
					f.comparePanel(entities, queries, fmt.Sprintf("checkpoint %d", i+1))
				}
			}
			f.comparePanel(entities, queries, "final")
			t.Logf("seed %d: %d hits / %d lookups (%d survived an ingest round)",
				seed, f.hits, f.lookups, f.staleHits)
			if f.hits == 0 {
				t.Error("cache never served a hit: the coherence oracle exercised nothing")
			}
			if f.staleHits == 0 {
				t.Error("no hit ever survived an ingest round: invalidation was never tested")
			}
		})
	}
}

// httpFetcher fetches panel URLs and tracks hit accounting per round so
// the test can prove entries actually survived ingests.
type httpFetcher struct {
	t    *testing.T
	base string

	lookups   int
	hits      int
	staleHits int
	round     int
	stored    map[string]int // URL -> round its entry was stored (MISS seen)
}

var coherencePages = []struct{ off, lim int }{{0, 5}, {5, 5}, {0, 50}}

func (f *httpFetcher) comparePanel(entities []event.Entity, queries []string, at string) {
	f.t.Helper()
	f.round++
	for _, e := range entities {
		for _, ps := range coherencePages {
			f.compareOne("/api/timeline", url.Values{"entity": {string(e)}}, ps.off, ps.lim, at)
		}
	}
	for _, q := range queries {
		for _, ps := range coherencePages {
			f.compareOne("/api/search", url.Values{"q": {q}}, ps.off, ps.lim, at)
		}
	}
}

func (f *httpFetcher) compareOne(path string, vals url.Values, off, lim int, at string) {
	f.t.Helper()
	vals.Set("offset", fmt.Sprint(off))
	vals.Set("limit", fmt.Sprint(lim))
	u := f.base + path + "?" + vals.Encode()

	gotBody, gotETag, xcache := f.get(u, "")
	f.lookups++
	if xcache == "HIT" {
		f.hits++
		if f.stored[u] < f.round {
			f.staleHits++
		}
	} else {
		f.stored[u] = f.round
	}
	freshBody, freshETag, freshX := f.get(u, "no-store")
	if freshX != "BYPASS" {
		f.t.Fatalf("%s: no-store fetch reported X-Cache %q, want BYPASS", at, freshX)
	}
	if !bytes.Equal(gotBody, freshBody) {
		f.t.Fatalf("%s: %s (X-Cache %s) diverged from fresh compute:\ncached: %s\nfresh:  %s",
			at, u, xcache, gotBody, freshBody)
	}
	if gotETag != freshETag {
		f.t.Fatalf("%s: %s ETag drift: cached %s, fresh %s", at, u, gotETag, freshETag)
	}
}

func (f *httpFetcher) get(u, cacheControl string) (body []byte, etag, xcache string) {
	f.t.Helper()
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		f.t.Fatal(err)
	}
	if cacheControl != "" {
		req.Header.Set("Cache-Control", cacheControl)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		f.t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(resp.Body)
	if err != nil {
		f.t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		f.t.Fatalf("GET %s = %d: %s", u, resp.StatusCode, body)
	}
	return body, resp.Header.Get("ETag"), resp.Header.Get("X-Cache")
}

// corpusEntities picks n frequent entities plus a guaranteed miss, in a
// deterministic order.
func corpusEntities(c *datagen.Corpus, n int) []event.Entity {
	freq := map[event.Entity]int{}
	for _, sn := range c.Snippets {
		for _, e := range sn.Entities {
			freq[e]++
		}
	}
	out := []event.Entity{"no_such_entity_zzz"}
	for len(out) < n {
		var best event.Entity
		bestN := -1
		for e, k := range freq {
			if k > bestN || (k == bestN && e < best) {
				best, bestN = e, k
			}
		}
		if bestN < 0 {
			break
		}
		delete(freq, best)
		out = append(out, best)
	}
	return out
}

// corpusQueries builds n search queries from corpus terms that survive
// the text pipeline unchanged, plus a guaranteed miss.
func corpusQueries(c *datagen.Corpus, n int) []string {
	seen := map[string]bool{}
	var stable []string
	for _, sn := range c.Snippets {
		for _, tm := range sn.Terms {
			if seen[tm.Token] {
				continue
			}
			seen[tm.Token] = true
			if toks := text.Pipeline(tm.Token); len(toks) == 1 && toks[0] == tm.Token {
				stable = append(stable, tm.Token)
			}
		}
		if len(stable) >= 2*n {
			break
		}
	}
	out := []string{"zzzzqq xqqqz"}
	for i := 0; i+1 < len(stable) && len(out) < n; i += 2 {
		out = append(out, stable[i]+" "+stable[i+1])
	}
	return out
}
