// Package server implements the StoryPivot demonstration backend: an HTTP
// JSON API plus an embedded HTML front-end that mirrors the paper's demo
// modules — document selection (Figure 3), story overview (Figure 4),
// stories per source (Figure 5), snippets per story (Figure 6), and the
// statistics module (Figure 7).
package server

import (
	"sort"
	"time"

	"repro/internal/event"
)

// SnippetView is the JSON rendering of a snippet (Figures 5/6 "Snippet
// Information" panel).
type SnippetView struct {
	ID        uint64    `json:"id"`
	Source    string    `json:"source"`
	Timestamp time.Time `json:"timestamp"`
	Entities  []string  `json:"entities"`
	Terms     []string  `json:"description"`
	Text      string    `json:"text,omitempty"`
	Document  string    `json:"document,omitempty"`
	Role      string    `json:"role,omitempty"`
}

// snippetTexter hydrates display text for snippets whose resident copy
// carries none (tiered storage strips it); *storypivot.Pipeline
// implements it. A nil reader renders the snippet as-is.
type snippetTexter interface {
	SnippetText(id event.SnippetID) (text, document string, ok bool)
}

func snippetView(rd snippetTexter, s *event.Snippet, role event.SnippetRole) SnippetView {
	v := SnippetView{
		ID:        uint64(s.ID),
		Source:    string(s.Source),
		Timestamp: s.Timestamp,
		Text:      s.Text,
		Document:  s.Document,
	}
	if rd != nil && v.Text == "" && v.Document == "" {
		// Either the snippet genuinely has no display text (hydration
		// returns the same empties and omitempty keeps the JSON
		// identical) or it was stripped for the tiers and the store
		// holds the payload.
		if text, doc, ok := rd.SnippetText(s.ID); ok {
			v.Text, v.Document = text, doc
		}
	}
	for _, e := range s.Entities {
		v.Entities = append(v.Entities, string(e))
	}
	for _, t := range s.Terms {
		v.Terms = append(v.Terms, t.Token)
	}
	if role != event.RoleUnknown {
		v.Role = role.String()
	}
	return v
}

// EntityCountView renders "{UKR,5}" style entries of the story panels.
type EntityCountView struct {
	Entity string `json:"entity"`
	Count  int    `json:"count"`
}

// TermWeightView renders "{crash,3}" style entries.
type TermWeightView struct {
	Token  string  `json:"token"`
	Weight float64 `json:"weight"`
}

// StoryView is the JSON rendering of a per-source story ("Story
// Information" panel, Figure 5).
type StoryView struct {
	ID       uint64            `json:"id"`
	Source   string            `json:"source"`
	Start    time.Time         `json:"start"`
	End      time.Time         `json:"end"`
	Size     int               `json:"snippets"`
	Entities []EntityCountView `json:"entities"`
	Terms    []TermWeightView  `json:"description"`
	Snippets []SnippetView     `json:"snippetList,omitempty"`
}

func storyView(rd snippetTexter, st *event.Story, withSnippets bool) StoryView {
	v := StoryView{
		ID:     uint64(st.ID),
		Source: string(st.Source),
		Start:  st.Start,
		End:    st.End,
		Size:   st.Len(),
	}
	for _, ec := range st.TopEntities(10) {
		v.Entities = append(v.Entities, EntityCountView{string(ec.Entity), ec.Count})
	}
	for _, tw := range st.TopTerms(10) {
		v.Terms = append(v.Terms, TermWeightView{tw.Token, tw.Weight})
	}
	if withSnippets {
		for _, s := range st.Snippets {
			v.Snippets = append(v.Snippets, snippetView(rd, s, event.RoleUnknown))
		}
	}
	return v
}

// SearchPageView is the paginated envelope of /api/search and
// /api/stories/by-entity: one window of the ranked hits plus the total
// hit count. Scores is populated only when the request asks for it
// (scores=1) — the side channel a scatter-gather router uses to merge
// shard pages; omitempty keeps ordinary responses byte-identical whether
// or not the serving node is a shard.
type SearchPageView struct {
	Total   int              `json:"total"`
	Offset  int              `json:"offset"`
	Limit   int              `json:"limit"`
	Results []IntegratedView `json:"results"`
	Scores  []float64        `json:"scores,omitempty"`
}

// TimelinePageView is the paginated envelope of /api/timeline.
type TimelinePageView struct {
	Total   int           `json:"total"`
	Offset  int           `json:"offset"`
	Limit   int           `json:"limit"`
	Results []SnippetView `json:"results"`
}

// IntegratedView renders an integrated story (Figures 4 and 6).
type IntegratedView struct {
	ID       uint64            `json:"id"`
	Sources  []string          `json:"sources"`
	Start    time.Time         `json:"start"`
	End      time.Time         `json:"end"`
	Size     int               `json:"snippets"`
	Members  []StoryView       `json:"members,omitempty"`
	Entities []EntityCountView `json:"entities"`
	Snippets []SnippetView     `json:"snippetList,omitempty"`
}

func integratedView(rd snippetTexter, is *event.IntegratedStory, detail bool) IntegratedView {
	start, end := is.Extent()
	v := IntegratedView{
		ID:    uint64(is.ID),
		Start: start,
		End:   end,
		Size:  is.Len(),
	}
	for _, s := range is.Sources() {
		v.Sources = append(v.Sources, string(s))
	}
	// Top entities by count.
	ef := is.EntityFreq()
	top := make([]event.EntityCount, 0, len(ef))
	for e, c := range ef {
		top = append(top, event.EntityCount{Entity: e, Count: c})
	}
	sort.Slice(top, func(i, j int) bool {
		if top[i].Count != top[j].Count {
			return top[i].Count > top[j].Count
		}
		return top[i].Entity < top[j].Entity
	})
	if len(top) > 10 {
		top = top[:10]
	}
	for _, ec := range top {
		v.Entities = append(v.Entities, EntityCountView{string(ec.Entity), ec.Count})
	}
	if detail {
		for _, m := range is.Members {
			v.Members = append(v.Members, storyView(rd, m, false))
		}
		for _, s := range is.Snippets() {
			v.Snippets = append(v.Snippets, snippetView(rd, s, is.Roles[s.ID]))
		}
	}
	return v
}

// DocumentView renders an entry of the document-selection module
// (Figure 3).
type DocumentView struct {
	Source    string    `json:"source"`
	URL       string    `json:"url"`
	Title     string    `json:"title"`
	Preview   string    `json:"preview"`
	Published time.Time `json:"published"`
	Selected  bool      `json:"selected"`
}

// SourceStatsView is one source's row in the statistics module (Figure 7).
type SourceStatsView struct {
	Source      string `json:"source"`
	Snippets    int    `json:"snippets"`
	Stories     int    `json:"stories"`
	Comparisons int    `json:"comparisons"`
	Splits      int    `json:"splits"`
	Merges      int    `json:"merges"`
}

// StatsView is the statistics module payload.
type StatsView struct {
	Sources       []SourceStatsView `json:"sources"`
	Ingested      uint64            `json:"ingested"`
	Integrated    int               `json:"integratedStories"`
	MultiSource   int               `json:"multiSourceStories"`
	Matches       int               `json:"matches"`
	AlignMeanMs   float64           `json:"alignMeanMs"`
	IngestMeanUs  float64           `json:"ingestMeanMicros"`
	IdentifyMode  string            `json:"identifyMode"`
	WindowHours   float64           `json:"windowHours"`
	StartDate     time.Time         `json:"startDate"`
	EndDate       time.Time         `json:"endDate"`
	EntityCount   int               `json:"entities"`
	DocumentCount int               `json:"documents"`
}
