package server

import (
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/feed"
)

func feedSnips(src string, n int) []*event.Snippet {
	base := time.Date(2014, 7, 17, 0, 0, 0, 0, time.UTC)
	out := make([]*event.Snippet, 0, n)
	for i := 1; i <= n; i++ {
		sn := &event.Snippet{
			ID:        event.SnippetID(i),
			Source:    event.SourceID(src),
			Timestamp: base.Add(time.Duration(i) * time.Minute),
			Entities:  []event.Entity{"ukraine", "mh17"},
			Terms:     []event.Term{{Token: "crash", Weight: 1}},
			Document:  "http://" + src + "/feed" + strconv.Itoa(i),
		}
		sn.Normalize()
		out = append(out, sn)
	}
	return out
}

func getHealth(t *testing.T, url string) (int, HealthView) {
	t.Helper()
	resp, err := http.Get(url + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hv HealthView
	if err := json.NewDecoder(resp.Body).Decode(&hv); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, hv
}

// Without feeds attached /healthz is a plain liveness probe and
// /api/feeds explains there is nothing to report.
func TestHealthzWithoutFeeds(t *testing.T) {
	_, ts := newTestServer(t)
	code, hv := getHealth(t, ts.URL)
	if code != http.StatusOK || hv.Status != "ok" {
		t.Fatalf("healthz without feeds = %d %q", code, hv.Status)
	}
	resp, err := http.Get(ts.URL + "/api/feeds")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /api/feeds without manager = %d, want 404", resp.StatusCode)
	}
}

// With a feed attached, /api/feeds reports per-source runner state and
// /healthz tracks the manager through running → draining.
func TestFeedsEndpointAndHealthz(t *testing.T) {
	s, ts := newTestServer(t)
	before := s.Pipeline().Engine().Ingested()

	m, err := feed.NewManager(s.Pipeline(), feed.Config{
		BackoffBase:  time.Millisecond,
		BackoffCap:   4 * time.Millisecond,
		PollInterval: 3 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// IDs offset into the replay range so they cannot collide with the
	// snippets extracted from the preloaded demo documents.
	if err := m.Add(feed.NewReplay("feedsrc", feedSnips("feedsrc", 10), 1<<32)); err != nil {
		t.Fatal(err)
	}
	s.AttachFeeds(m)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if m.CaughtUp() && s.Pipeline().Engine().Ingested() == before+10 {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	var fv FeedsView
	getJSON(t, ts.URL+"/api/feeds", &fv)
	if len(fv.Sources) != 1 || fv.Sources[0].Source != "feedsrc" {
		t.Fatalf("feeds view sources = %+v", fv.Sources)
	}
	st := fv.Sources[0]
	if st.State != feed.StateHealthy || st.Snippets != 10 || !st.CaughtUp {
		t.Fatalf("source status = %+v", st)
	}
	if fv.Healthy != 1 || fv.Draining {
		t.Fatalf("rollup = %+v", fv)
	}
	if got := s.Pipeline().Engine().Ingested(); got != before+10 {
		t.Fatalf("engine ingested %d, want %d", got, before+10)
	}

	code, hv := getHealth(t, ts.URL)
	if code != http.StatusOK || hv.Status != "ok" || hv.Healthy != 1 {
		t.Fatalf("healthz while running = %d %+v", code, hv)
	}

	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	code, hv = getHealth(t, ts.URL)
	if code != http.StatusServiceUnavailable || hv.Status != "draining" {
		t.Fatalf("healthz after drain = %d %+v", code, hv)
	}
}

// POST /api/documents surfaces per-snippet acceptance counts.
func TestAddDocumentReportsAcceptance(t *testing.T) {
	_, ts := newTestServer(t)
	body := `{"source":"nyt","url":"http://nytimes.com/new.html","published":"2014-07-19T00:00:00Z",` +
		`"title":"Crash Site Investigation Continues","body":"Investigators continued to examine the crash site in eastern Ukraine where the plane was shot down."}`
	resp, err := http.Post(ts.URL+"/api/documents", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /api/documents = %d", resp.StatusCode)
	}
	var out struct {
		Status       string `json:"status"`
		Accepted     int    `json:"accepted"`
		IngestErrors int    `json:"ingest_errors"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Status != "added" || out.Accepted < 1 || out.IngestErrors != 0 {
		t.Fatalf("add response = %+v", out)
	}
}
