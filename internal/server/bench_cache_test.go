package server

import (
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/experiments"
	"repro/internal/qcache"
	"repro/internal/text"
)

// benchServer builds a server over a settled synthetic corpus, holding
// back a tail of snippets for the background ingest writer, and a
// zipfian-replayable panel of search URLs.
func benchServer(b *testing.B, cached bool) (*Server, http.Handler, []string, []*datagen.Corpus) {
	b.Helper()
	corpus := datagen.Generate(experiments.CorpusScale(2000, 5, 17))
	s, err := New()
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	if cached {
		s.EnableCache(qcache.Config{TTL: 30 * time.Second, Shards: 16, MaxEntries: 4096})
	}
	preload := corpus.Snippets[:len(corpus.Snippets)*4/5]
	for _, sn := range preload {
		if err := s.Pipeline().Ingest(sn); err != nil {
			b.Fatal(err)
		}
	}
	s.Pipeline().Result() // settle

	// Panel: 64 distinct single- and two-term queries built from corpus
	// vocabulary, replayed under a zipfian distribution below.
	seen := map[string]bool{}
	var terms []string
	for _, sn := range preload {
		for _, tm := range sn.Terms {
			if !seen[tm.Token] {
				seen[tm.Token] = true
				if toks := text.Pipeline(tm.Token); len(toks) == 1 {
					terms = append(terms, tm.Token)
				}
			}
		}
		if len(terms) >= 128 {
			break
		}
	}
	var urls []string
	for i := 0; len(urls) < 64 && i+1 < len(terms); i += 2 {
		q := terms[i]
		if i%4 == 0 {
			q += " " + terms[i+1]
		}
		urls = append(urls, "/api/search?"+url.Values{"q": {q}, "limit": {"10"}}.Encode())
	}
	if len(urls) < 8 {
		b.Fatalf("panel too small: %d urls", len(urls))
	}
	return s, s.rawMux(), urls, []*datagen.Corpus{corpus}
}

// startFeed trickles the held-back corpus tail into the live pipeline
// at a fixed pace, so invalidations land throughout the measurement.
func startFeed(s *Server, corpus *datagen.Corpus, pace time.Duration) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	tail := corpus.Snippets[len(corpus.Snippets)*4/5:]
	go func() {
		defer close(finished)
		tick := time.NewTicker(pace)
		defer tick.Stop()
		for i := 0; ; i++ {
			select {
			case <-done:
				return
			case <-tick.C:
				s.Pipeline().Ingest(tail[i%len(tail)])
			}
		}
	}()
	return func() { close(done); <-finished }
}

// benchZipfReplay replays the URL panel under a zipfian distribution
// (exponent 1.3: a few hot queries, a long cold tail) against the raw
// mux while the feed writer churns, reporting the observed hit rate.
func benchZipfReplay(b *testing.B, s *Server, h http.Handler, urls []string, corpus *datagen.Corpus) {
	stop := startFeed(s, corpus, 2*time.Millisecond)
	defer stop()
	zipf := rand.NewZipf(rand.New(rand.NewSource(17)), 1.3, 1, uint64(len(urls)-1))
	picks := make([]int, 4096)
	for i := range picks {
		picks[i] = int(zipf.Uint64())
	}
	hits := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodGet, urls[picks[i%len(picks)]], nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d on %s", rec.Code, urls[picks[i%len(picks)]])
		}
		if rec.Header().Get("X-Cache") == "HIT" {
			hits++
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(hits)/float64(b.N), "hitrate")
}

// BenchmarkSearchCached measures the served query path with the result
// cache on: zipfian replay over 64 queries, concurrent paced ingest.
func BenchmarkSearchCached(b *testing.B) {
	s, h, urls, cs := benchServer(b, true)
	benchZipfReplay(b, s, h, urls, cs[0])
}

// BenchmarkSearchUncached is the identical replay with caching off —
// the denominator for the cached-speedup acceptance check.
func BenchmarkSearchUncached(b *testing.B) {
	s, h, urls, cs := benchServer(b, false)
	benchZipfReplay(b, s, h, urls, cs[0])
}
