// Package kb implements the knowledge-base integration the paper proposes
// as an extension (§3: "we can further extend it with interfaces to
// existing knowledge bases such as DBpedia. Connecting STORYPIVOT to
// knowledge bases explicitly helps experts and casual users to obtain more
// information on the context of stories"). DBpedia itself is unavailable
// offline, so this package provides an embedded knowledge base with the
// same access pattern: canonical entities with labels, types, aliases, and
// typed relations, loadable from JSONL dumps and queryable for story
// context.
package kb

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"repro/internal/event"
	"repro/internal/extract"
)

// Record is one knowledge-base entity.
type Record struct {
	// ID is the canonical entity identifier used across StoryPivot.
	ID event.Entity `json:"id"`
	// Label is the display name.
	Label string `json:"label"`
	// Type is a coarse ontology class (country, organization, person,
	// company, location, aircraft, ...).
	Type string `json:"type"`
	// Aliases are the surface forms that should resolve to this entity.
	Aliases []string `json:"aliases"`
	// Abstract is a one-sentence description for the context panel.
	Abstract string `json:"abstract,omitempty"`
	// Related lists typed relations to other entities.
	Related []Relation `json:"related,omitempty"`
}

// Relation is a typed edge between entities.
type Relation struct {
	Predicate string       `json:"predicate"` // e.g. "capitalOf", "memberOf"
	Object    event.Entity `json:"object"`
}

// KB is an in-memory knowledge base. Safe for concurrent reads after
// loading; loads are serialised internally.
type KB struct {
	mu      sync.RWMutex
	records map[event.Entity]*Record
}

// New creates an empty knowledge base.
func New() *KB {
	return &KB{records: make(map[event.Entity]*Record)}
}

// ErrDuplicate reports an Add of an already-present entity ID.
var ErrDuplicate = errors.New("kb: duplicate entity")

// Add inserts a record. The ID must be unique.
func (k *KB) Add(r *Record) error {
	if r.ID == "" {
		return errors.New("kb: record without ID")
	}
	k.mu.Lock()
	defer k.mu.Unlock()
	if _, dup := k.records[r.ID]; dup {
		return fmt.Errorf("%w: %s", ErrDuplicate, r.ID)
	}
	cp := *r
	cp.Aliases = append([]string(nil), r.Aliases...)
	cp.Related = append([]Relation(nil), r.Related...)
	k.records[r.ID] = &cp
	return nil
}

// Get returns the record for an entity, or nil.
func (k *KB) Get(e event.Entity) *Record {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return k.records[e]
}

// Len returns the number of records.
func (k *KB) Len() int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return len(k.records)
}

// Entities returns all entity IDs, sorted.
func (k *KB) Entities() []event.Entity {
	k.mu.RLock()
	defer k.mu.RUnlock()
	out := make([]event.Entity, 0, len(k.records))
	for e := range k.records {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LoadJSONL reads records from a JSONL stream (one Record per line),
// returning the number loaded. Duplicate IDs abort the load.
func (k *KB) LoadJSONL(r io.Reader) (int, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			return n, fmt.Errorf("kb: line %d: %w", n+1, err)
		}
		if err := k.Add(&rec); err != nil {
			return n, err
		}
		n++
	}
	return n, sc.Err()
}

// Gazetteer derives an extraction gazetteer from the knowledge base:
// every record's label and aliases become surface forms of its entity.
// This is how KB integration feeds back into the pipeline — richer KBs
// yield richer annotation.
func (k *KB) Gazetteer() *extract.Gazetteer {
	g := extract.NewGazetteer()
	k.mu.RLock()
	defer k.mu.RUnlock()
	for _, r := range k.records {
		if r.Label != "" {
			g.Add(r.Label, r.ID)
		}
		for _, a := range r.Aliases {
			g.Add(a, r.ID)
		}
	}
	return g
}

// Context describes a story's entities with KB knowledge: resolved
// records, unknown entities, and intra-story relations (pairs of story
// entities directly related in the KB) — the "context of stories" panel.
type Context struct {
	Known    []*Record
	Unknown  []event.Entity
	Links    []Link
	TypeFreq map[string]int
}

// Link is a KB relation whose subject and object both occur in the story.
type Link struct {
	Subject   event.Entity
	Predicate string
	Object    event.Entity
}

// StoryContext resolves the entities of an entity-frequency map (a story
// or integrated story aggregate) against the knowledge base.
func (k *KB) StoryContext(entities map[event.Entity]int) *Context {
	ctx := &Context{TypeFreq: make(map[string]int)}
	k.mu.RLock()
	defer k.mu.RUnlock()
	present := make(map[event.Entity]bool, len(entities))
	ids := make([]event.Entity, 0, len(entities))
	for e := range entities {
		present[e] = true
		ids = append(ids, e)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, e := range ids {
		r := k.records[e]
		if r == nil {
			ctx.Unknown = append(ctx.Unknown, e)
			continue
		}
		ctx.Known = append(ctx.Known, r)
		ctx.TypeFreq[r.Type]++
		for _, rel := range r.Related {
			if present[rel.Object] {
				ctx.Links = append(ctx.Links, Link{Subject: e, Predicate: rel.Predicate, Object: rel.Object})
			}
		}
	}
	return ctx
}

// Seed returns a knowledge base covering the paper's running examples,
// the offline stand-in for a DBpedia snapshot.
func Seed() *KB {
	k := New()
	for _, r := range []Record{
		{ID: "UKR", Label: "Ukraine", Type: "country", Aliases: []string{"ukrainian"},
			Abstract: "Country in eastern Europe; site of the 2014 crisis.",
			Related:  []Relation{{Predicate: "borders", Object: "RUS"}, {Predicate: "contains", Object: "DONETSK"}, {Predicate: "contains", Object: "CRIMEA"}}},
		{ID: "RUS", Label: "Russia", Type: "country", Aliases: []string{"russian", "russians"},
			Abstract: "Country spanning eastern Europe and northern Asia.",
			Related:  []Relation{{Predicate: "borders", Object: "UKR"}}},
		{ID: "MAL", Label: "Malaysia", Type: "country", Aliases: []string{"malaysian"},
			Abstract: "Country in southeast Asia."},
		{ID: "MAL_AIR", Label: "Malaysia Airlines", Type: "company", Aliases: []string{"malaysian airlines"},
			Abstract: "Flag carrier airline of Malaysia; operator of flight MH17.",
			Related:  []Relation{{Predicate: "basedIn", Object: "MAL"}}},
		{ID: "NTH", Label: "Netherlands", Type: "country", Aliases: []string{"dutch", "amsterdam"},
			Abstract: "Country in western Europe; most MH17 victims were Dutch."},
		{ID: "UN", Label: "United Nations", Type: "organization",
			Abstract: "Intergovernmental organization."},
		{ID: "US", Label: "United States", Type: "country", Aliases: []string{"american"},
			Abstract: "Country in North America."},
		{ID: "EU", Label: "European Union", Type: "organization",
			Abstract: "Political and economic union of European states.",
			Related:  []Relation{{Predicate: "member", Object: "NTH"}}},
		{ID: "DONETSK", Label: "Donetsk", Type: "location",
			Abstract: "City in eastern Ukraine.",
			Related:  []Relation{{Predicate: "locatedIn", Object: "UKR"}}},
		{ID: "CRIMEA", Label: "Crimea", Type: "location",
			Abstract: "Peninsula on the Black Sea.",
			Related:  []Relation{{Predicate: "locatedIn", Object: "UKR"}}},
		{ID: "BOEING", Label: "Boeing", Type: "company",
			Abstract: "Aircraft manufacturer; built the 777 lost as MH17."},
		{ID: "GOOG", Label: "Google", Type: "company",
			Abstract: "Search and advertising company."},
		{ID: "YELP", Label: "Yelp", Type: "company",
			Abstract: "Local-business review platform.",
			Related:  []Relation{{Predicate: "competitorOf", Object: "GOOG"}}},
		{ID: "ISL", Label: "Israel", Type: "country", Aliases: []string{"israeli"},
			Abstract: "Country in western Asia."},
		{ID: "PAL", Label: "Palestine", Type: "country", Aliases: []string{"palestinian"},
			Abstract: "Territories in western Asia."},
	} {
		rec := r
		if err := k.Add(&rec); err != nil {
			panic(err) // seed data is static; a duplicate is a programming error
		}
	}
	return k
}
