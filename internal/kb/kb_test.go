package kb

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/event"
	"repro/internal/text"
)

func TestAddGetLen(t *testing.T) {
	k := New()
	if err := k.Add(&Record{ID: "UKR", Label: "Ukraine", Type: "country"}); err != nil {
		t.Fatal(err)
	}
	if err := k.Add(&Record{ID: "UKR"}); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate add error = %v", err)
	}
	if err := k.Add(&Record{}); err == nil {
		t.Fatal("empty ID accepted")
	}
	if k.Len() != 1 {
		t.Fatalf("Len = %d", k.Len())
	}
	if got := k.Get("UKR"); got == nil || got.Label != "Ukraine" {
		t.Fatalf("Get = %+v", got)
	}
	if k.Get("NOPE") != nil {
		t.Fatal("Get of absent entity should be nil")
	}
}

func TestAddIsolatesCallerSlices(t *testing.T) {
	k := New()
	aliases := []string{"ukrainian"}
	k.Add(&Record{ID: "UKR", Aliases: aliases})
	aliases[0] = "mutated"
	if k.Get("UKR").Aliases[0] != "ukrainian" {
		t.Fatal("KB shares alias slice with caller")
	}
}

func TestLoadJSONL(t *testing.T) {
	input := `{"id":"UKR","label":"Ukraine","type":"country","aliases":["ukrainian"]}
{"id":"RUS","label":"Russia","type":"country","related":[{"predicate":"borders","object":"UKR"}]}

`
	k := New()
	n, err := k.LoadJSONL(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 || k.Len() != 2 {
		t.Fatalf("loaded %d, Len %d", n, k.Len())
	}
	rus := k.Get("RUS")
	if len(rus.Related) != 1 || rus.Related[0].Object != "UKR" {
		t.Fatalf("relations not loaded: %+v", rus)
	}
	// Malformed JSON aborts with position info.
	if _, err := New().LoadJSONL(strings.NewReader("{nope")); err == nil {
		t.Fatal("malformed JSONL accepted")
	}
	// Duplicates abort.
	if _, err := New().LoadJSONL(strings.NewReader(`{"id":"A"}` + "\n" + `{"id":"A"}`)); !errors.Is(err, ErrDuplicate) {
		t.Fatalf("duplicate load error = %v", err)
	}
}

func TestEntitiesSorted(t *testing.T) {
	k := Seed()
	ents := k.Entities()
	if len(ents) != k.Len() {
		t.Fatalf("Entities len %d != Len %d", len(ents), k.Len())
	}
	for i := 1; i < len(ents); i++ {
		if ents[i] <= ents[i-1] {
			t.Fatal("Entities not sorted")
		}
	}
}

func TestGazetteerFromKB(t *testing.T) {
	k := Seed()
	g := k.Gazetteer()
	toks := text.StemAll(text.Tokenize("Malaysia Airlines flight crashed over Ukraine, Dutch investigators say"))
	found := g.FindAll(toks)
	want := map[event.Entity]bool{"MAL_AIR": true, "UKR": true, "NTH": true}
	got := map[event.Entity]bool{}
	for _, e := range found {
		got[e] = true
	}
	for e := range want {
		if !got[e] {
			t.Errorf("gazetteer missed %s (found %v)", e, found)
		}
	}
}

func TestStoryContext(t *testing.T) {
	k := Seed()
	ctx := k.StoryContext(map[event.Entity]int{
		"UKR": 5, "RUS": 2, "DONETSK": 1, "ent_unknown": 3,
	})
	if len(ctx.Known) != 3 {
		t.Fatalf("Known = %d", len(ctx.Known))
	}
	if len(ctx.Unknown) != 1 || ctx.Unknown[0] != "ent_unknown" {
		t.Fatalf("Unknown = %v", ctx.Unknown)
	}
	if ctx.TypeFreq["country"] != 2 || ctx.TypeFreq["location"] != 1 {
		t.Fatalf("TypeFreq = %v", ctx.TypeFreq)
	}
	// Intra-story links: UKR borders RUS (and vice versa), DONETSK in UKR,
	// UKR contains DONETSK.
	if len(ctx.Links) < 3 {
		t.Fatalf("Links = %+v", ctx.Links)
	}
	hasLink := func(s event.Entity, p string, o event.Entity) bool {
		for _, l := range ctx.Links {
			if l.Subject == s && l.Predicate == p && l.Object == o {
				return true
			}
		}
		return false
	}
	if !hasLink("UKR", "borders", "RUS") || !hasLink("DONETSK", "locatedIn", "UKR") {
		t.Fatalf("expected links missing: %+v", ctx.Links)
	}
	// Empty input.
	empty := k.StoryContext(nil)
	if len(empty.Known) != 0 || len(empty.Unknown) != 0 {
		t.Fatal("empty context not empty")
	}
}

func TestSeedCoversRunningExample(t *testing.T) {
	k := Seed()
	for _, e := range []event.Entity{"UKR", "RUS", "MAL", "MAL_AIR", "NTH", "UN", "GOOG", "YELP"} {
		if k.Get(e) == nil {
			t.Errorf("seed missing %s", e)
		}
	}
}
