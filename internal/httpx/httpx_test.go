package httpx

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faults"
)

func okHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Write([]byte("ok"))
	})
}

func get(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, string(body)
}

func TestRecoverConvertsPanicTo500(t *testing.T) {
	before := metPanics.Value()
	ts := httptest.NewServer(Recover()(faults.Panicking("boom")))
	defer ts.Close()

	resp, body := get(t, ts.URL)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking handler = %d, want 500", resp.StatusCode)
	}
	if !strings.Contains(body, "internal error") {
		t.Fatalf("500 body = %q", body)
	}
	if got := metPanics.Value(); got != before+1 {
		t.Fatalf("panic counter = %d, want %d", got, before+1)
	}
}

func TestRecoverServerKeepsServingAfterPanic(t *testing.T) {
	// One route panics; the rest of the mux must stay alive across
	// repeated hits — the process-kill behaviour is what we removed.
	mux := http.NewServeMux()
	mux.Handle("/boom", faults.Panicking("kaboom"))
	mux.Handle("/", okHandler())
	ts := httptest.NewServer(Recover()(mux))
	defer ts.Close()

	for i := 0; i < 3; i++ {
		if resp, _ := get(t, ts.URL+"/boom"); resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("round %d: /boom = %d", i, resp.StatusCode)
		}
		if resp, body := get(t, ts.URL+"/"); resp.StatusCode != http.StatusOK || body != "ok" {
			t.Fatalf("round %d: / = %d %q after panic", i, resp.StatusCode, body)
		}
	}
}

func TestRecoverPassesThroughAbortHandler(t *testing.T) {
	// http.ErrAbortHandler is net/http's sanctioned connection-abort
	// signal; Recover must re-raise it, not convert it to a 500.
	before := metPanics.Value()
	ts := httptest.NewServer(Recover()(faults.Abort("partial")))
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err == nil {
		_, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr == nil {
			t.Fatal("aborted response completed cleanly")
		}
	}
	if got := metPanics.Value(); got != before {
		t.Fatalf("abort counted as panic: %d != %d", got, before)
	}
}

func TestDeadlineAttachesContextDeadline(t *testing.T) {
	var (
		haveDeadline bool
		remaining    time.Duration
	)
	h := Deadline(250 * time.Millisecond)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var dl time.Time
		dl, haveDeadline = r.Context().Deadline()
		remaining = time.Until(dl)
		w.WriteHeader(http.StatusNoContent)
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if !haveDeadline {
		t.Fatal("request context has no deadline")
	}
	if remaining <= 0 || remaining > 250*time.Millisecond {
		t.Fatalf("deadline remaining = %v", remaining)
	}

	// A cancelled deadline is observable by the handler.
	slowSawCancel := make(chan bool, 1)
	h = Deadline(10 * time.Millisecond)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
			slowSawCancel <- true
		case <-time.After(5 * time.Second):
			slowSawCancel <- false
		}
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if !<-slowSawCancel {
		t.Fatal("handler never observed the deadline expiring")
	}
}

func TestDeadlineZeroDisabled(t *testing.T) {
	h := Deadline(0)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, ok := r.Context().Deadline(); ok {
			t.Error("Deadline(0) attached a deadline")
		}
	}))
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
}

func TestGateSheds429WithRetryAfter(t *testing.T) {
	beforeShed := metShed.Value()
	blocker := faults.NewBlocker(2)
	gate := NewGate(2, 3*time.Second)
	ts := httptest.NewServer(gate.Middleware()(blocker.Handler(nil)))
	defer ts.Close()
	defer blocker.Release()

	// Fill the gate with two parked requests.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(ts.URL)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-blocker.Entered():
		case <-time.After(5 * time.Second):
			t.Fatal("in-flight request never entered")
		}
	}

	// The third request is shed immediately with 429 + Retry-After.
	resp, body := get(t, ts.URL)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap request = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", ra)
	}
	if !strings.Contains(body, "overloaded") {
		t.Fatalf("429 body = %q", body)
	}
	if got := metShed.Value(); got != beforeShed+1 {
		t.Fatalf("shed counter = %d, want %d", got, beforeShed+1)
	}

	// Release the parked requests; capacity frees and service resumes.
	blocker.Release()
	wg.Wait()
	if resp, _ := get(t, ts.URL); resp.StatusCode != http.StatusOK {
		t.Fatalf("post-overload request = %d, want 200", resp.StatusCode)
	}
	if gate.Inflight() != 0 {
		t.Fatalf("inflight = %d after all requests done", gate.Inflight())
	}
}

func TestGateUnlimitedWhenZero(t *testing.T) {
	h := NewGate(0, time.Second).Middleware()(okHandler())
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("unlimited gate = %d", rec.Code)
	}
}

func TestBodyLimitCapsRequests(t *testing.T) {
	h := BodyLimit(16)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if _, err := io.ReadAll(r.Body); err != nil {
			http.Error(w, err.Error(), http.StatusRequestEntityTooLarge)
			return
		}
		w.Write([]byte("ok"))
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()

	resp, err := http.Post(ts.URL, "text/plain", strings.NewReader("small"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body = %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL, "text/plain", strings.NewReader(strings.Repeat("x", 64)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", resp.StatusCode)
	}
}

func TestInstrumentCountsStatusClasses(t *testing.T) {
	before2xx := metStatus[1].Value()
	before4xx := metStatus[3].Value()
	before5xx := metStatus[4].Value()
	beforeReqs := metRequests.Value()

	mux := http.NewServeMux()
	mux.Handle("/ok", okHandler())
	mux.HandleFunc("/missing", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "gone", http.StatusNotFound)
	})
	mux.HandleFunc("/fail", func(w http.ResponseWriter, _ *http.Request) {
		http.Error(w, "broken", http.StatusInternalServerError)
	})
	mux.HandleFunc("/silent", func(http.ResponseWriter, *http.Request) {})
	ts := httptest.NewServer(Instrument()(mux))
	defer ts.Close()

	for _, p := range []string{"/ok", "/missing", "/fail", "/silent"} {
		resp, _ := get(t, ts.URL+p)
		resp.Body.Close()
	}
	if got := metRequests.Value() - beforeReqs; got != 4 {
		t.Fatalf("request counter delta = %d, want 4", got)
	}
	// /ok and /silent (nothing written -> net/http 200) are 2xx.
	if got := metStatus[1].Value() - before2xx; got != 2 {
		t.Fatalf("2xx delta = %d, want 2", got)
	}
	if got := metStatus[3].Value() - before4xx; got != 1 {
		t.Fatalf("4xx delta = %d, want 1", got)
	}
	if got := metStatus[4].Value() - before5xx; got != 1 {
		t.Fatalf("5xx delta = %d, want 1", got)
	}
}

func TestInstrumentCountsRecoveredPanicsAs5xx(t *testing.T) {
	before5xx := metStatus[4].Value()
	// Instrument is outermost, Recover inside it: recovery writes the
	// 500 to the shared statusWriter and returns normally, so the
	// instrumented status reflects it.
	ts := httptest.NewServer(Chain(Instrument(), Recover())(faults.Panicking("x")))
	defer ts.Close()
	resp, _ := get(t, ts.URL)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if got := metStatus[4].Value() - before5xx; got != 1 {
		t.Fatalf("5xx delta = %d, want 1", got)
	}
}

func TestChainOrder(t *testing.T) {
	var order []string
	mw := func(name string) Middleware {
		return func(next http.Handler) http.Handler {
			return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				order = append(order, name)
				next.ServeHTTP(w, r)
			})
		}
	}
	Chain(mw("a"), mw("b"), mw("c"))(okHandler()).
		ServeHTTP(httptest.NewRecorder(), httptest.NewRequest("GET", "/", nil))
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("middleware order = %v", order)
	}
}

func TestWrapFullStack(t *testing.T) {
	h := Wrap(okHandler(), Config{
		MaxInflight:    4,
		RetryAfter:     time.Second,
		RequestTimeout: time.Second,
		MaxBodyBytes:   1 << 10,
	})
	ts := httptest.NewServer(h)
	defer ts.Close()
	if resp, body := get(t, ts.URL); resp.StatusCode != http.StatusOK || body != "ok" {
		t.Fatalf("wrapped handler = %d %q", resp.StatusCode, body)
	}
}

func TestServerConfigDefaults(t *testing.T) {
	srv := NewServer(":0", okHandler(), ServerConfig{})
	if srv.ReadTimeout != DefaultReadTimeout || srv.WriteTimeout != DefaultWriteTimeout ||
		srv.IdleTimeout != DefaultIdleTimeout || srv.ReadHeaderTimeout != DefaultReadHeaderTimeout ||
		srv.MaxHeaderBytes != DefaultMaxHeaderBytes {
		t.Fatalf("defaults not applied: %+v", srv)
	}
	// Negative values disable a timeout explicitly.
	srv = NewServer(":0", okHandler(), ServerConfig{ReadTimeout: -1})
	if srv.ReadTimeout != 0 {
		t.Fatalf("negative ReadTimeout = %v, want disabled", srv.ReadTimeout)
	}
}

func TestServeStopsOnListenerError(t *testing.T) {
	ln := newLocalListener(t)
	srv := NewServer("", okHandler(), ServerConfig{})
	ln.Close() // make Serve fail immediately
	err := Serve(context.Background(), srv, ln, time.Second)
	if err == nil {
		t.Fatal("Serve on closed listener returned nil")
	}
}

func TestGateRetryAfterRoundsUpFractionalSeconds(t *testing.T) {
	blocker := faults.NewBlocker(1)
	gate := NewGate(1, 1500*time.Millisecond)
	ts := httptest.NewServer(gate.Middleware()(blocker.Handler(nil)))
	defer ts.Close()
	defer blocker.Release()

	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Get(ts.URL)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	select {
	case <-blocker.Entered():
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never entered")
	}

	resp, _ := get(t, ts.URL)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap request = %d, want 429", resp.StatusCode)
	}
	// A 1.5s hint must round UP: "Retry-After: 1" tells clients to come
	// back half a second before the gate wants them.
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\" (ceil of 1.5s)", ra)
	}
	blocker.Release()
	<-done
}

func TestRetryAfterSecondsRoundsUpAndClamps(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 1},
		{-5 * time.Second, 1},
		{time.Millisecond, 1},
		{time.Second, 1},
		{1001 * time.Millisecond, 2},
		{1500 * time.Millisecond, 2},
		{2 * time.Second, 2},
		{59*time.Second + time.Nanosecond, 60},
	}
	for _, c := range cases {
		if got := RetryAfterSeconds(c.d); got != c.want {
			t.Errorf("RetryAfterSeconds(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}
