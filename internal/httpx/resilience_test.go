package httpx

// End-to-end fault-injection tests for the resilience layer: a real
// listener, real connections, and faults-package handlers proving the
// three production properties — shutdown drains in-flight work,
// overload sheds with 429, and panics are contained — plus the
// grace-expiry force-close path.

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"testing"
	"time"

	"repro/internal/faults"
)

func newLocalListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

// startServe runs Serve in the background and returns the base URL, the
// cancel func that triggers graceful shutdown, and the channel carrying
// Serve's result.
func startServe(t *testing.T, h http.Handler, grace time.Duration) (string, context.CancelFunc, <-chan error) {
	t.Helper()
	ln := newLocalListener(t)
	srv := NewServer("", h, ServerConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, srv, ln, grace) }()
	return "http://" + ln.Addr().String(), cancel, done
}

// TestShutdownDrainsInflight proves the SIGTERM path: a request parked
// inside a handler when shutdown begins still completes with 200, the
// server refuses new connections, and Serve returns nil (clean drain).
func TestShutdownDrainsInflight(t *testing.T) {
	blocker := faults.NewBlocker(1)
	url, cancel, done := startServe(t, blocker.Handler(nil), 10*time.Second)
	defer cancel()

	type result struct {
		code int
		body string
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := http.Get(url)
		if err != nil {
			resc <- result{err: err}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		resc <- result{code: resp.StatusCode, body: string(body)}
	}()

	select {
	case <-blocker.Entered():
	case <-time.After(5 * time.Second):
		t.Fatal("request never entered the handler")
	}

	// Trigger shutdown with the request still in flight.
	cancel()
	select {
	case err := <-done:
		t.Fatalf("Serve returned (%v) with a request still in flight", err)
	case <-time.After(100 * time.Millisecond):
		// Still draining, as it should be.
	}
	select {
	case <-resc:
		t.Fatal("in-flight request completed before release")
	default:
	}

	// Release the handler: the drained request must complete cleanly.
	blocker.Release()
	select {
	case res := <-resc:
		if res.err != nil {
			t.Fatalf("in-flight request failed during drain: %v", res.err)
		}
		if res.code != http.StatusOK || res.body != "ok" {
			t.Fatalf("drained request = %d %q", res.code, res.body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed")
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve after drain = %v, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after drain")
	}

	// The listener is gone: new requests are refused, not queued.
	if _, err := http.Get(url); err == nil {
		t.Fatal("request succeeded after shutdown")
	}
}

// TestShutdownGraceExpiryForcesClose proves the other half of the drain
// contract: a handler that never finishes cannot hold the process
// hostage — Serve force-closes after the grace budget and reports the
// deadline error.
func TestShutdownGraceExpiryForcesClose(t *testing.T) {
	blocker := faults.NewBlocker(1)
	defer blocker.Release()
	url, cancel, done := startServe(t, blocker.Handler(nil), 50*time.Millisecond)
	defer cancel()

	go func() {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
		}
	}()
	select {
	case <-blocker.Entered():
	case <-time.After(5 * time.Second):
		t.Fatal("request never entered the handler")
	}
	cancel()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Serve = nil despite a stuck handler")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve hung past the grace budget")
	}
}

// TestOverloadShedsUnderRealLoad drives the full Wrap stack over a real
// listener: with the gate full, extra requests shed with 429 and
// Retry-After; after release, service resumes.
func TestOverloadShedsUnderRealLoad(t *testing.T) {
	const cap = 3
	blocker := faults.NewBlocker(cap)
	h := Wrap(blocker.Handler(nil), Config{MaxInflight: cap, RetryAfter: 2 * time.Second})
	url, cancel, done := startServe(t, h, 5*time.Second)

	for i := 0; i < cap; i++ {
		go func() {
			resp, err := http.Get(url)
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	for i := 0; i < cap; i++ {
		select {
		case <-blocker.Entered():
		case <-time.After(5 * time.Second):
			t.Fatalf("request %d never entered", i)
		}
	}

	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q", ra)
	}

	blocker.Release()
	// Capacity frees as the parked requests drain; a retry succeeds.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("service never recovered after overload: last = %d", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Serve = %v", err)
	}
}

// TestPanicContainedUnderRealServer proves a panicking handler costs one
// 500, not the process: the same server keeps answering afterwards,
// including across repeated injected panics.
func TestPanicContainedUnderRealServer(t *testing.T) {
	var inj faults.Injector
	h := Wrap(inj.Wrap(nil), Config{MaxInflight: 8, RetryAfter: time.Second})
	url, cancel, done := startServe(t, h, 5*time.Second)

	for round := 0; round < 3; round++ {
		inj.PanicOnce()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("round %d: injected panic = %d, want 500", round, resp.StatusCode)
		}
		resp, err = http.Get(url)
		if err != nil {
			t.Fatalf("round %d: server died after panic: %v", round, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(body) != "ok" {
			t.Fatalf("round %d: post-panic request = %d %q", round, resp.StatusCode, body)
		}
	}

	cancel()
	if err := <-done; err != nil {
		t.Fatalf("Serve = %v", err)
	}
}

// TestRealSIGTERMDrains sends an actual SIGTERM to the process through
// the same signal.NotifyContext plumbing the cmd uses, proving the
// production drain path end to end: signal → context cancel → graceful
// drain of the in-flight request → clean exit.
func TestRealSIGTERMDrains(t *testing.T) {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM)
	defer stop()

	blocker := faults.NewBlocker(1)
	ln := newLocalListener(t)
	srv := NewServer("", blocker.Handler(nil), ServerConfig{})
	done := make(chan error, 1)
	go func() { done <- Serve(ctx, srv, ln, 10*time.Second) }()
	url := "http://" + ln.Addr().String()

	resc := make(chan error, 1)
	go func() {
		resp, err := http.Get(url)
		if err != nil {
			resc <- err
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			err = fmt.Errorf("drained request = %d", resp.StatusCode)
		}
		resc <- err
	}()
	select {
	case <-blocker.Entered():
	case <-time.After(5 * time.Second):
		t.Fatal("request never entered the handler")
	}

	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("SIGTERM never cancelled the context")
	}
	blocker.Release()
	if err := <-resc; err != nil {
		t.Fatalf("in-flight request during SIGTERM drain: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Serve after SIGTERM = %v", err)
	}
}
