package httpx

import (
	"context"
	"errors"
	"net"
	"net/http"
	"time"
)

// ServerConfig holds the transport-level protections of the listener:
// slow-client timeouts, header caps, and the drain budget. The zero
// value of any field falls back to the default below — a bare
// http.Server with no timeouts is exactly the demo-grade failure mode
// this package exists to remove.
type ServerConfig struct {
	ReadTimeout       time.Duration // full-request read budget
	ReadHeaderTimeout time.Duration // header read budget (Slowloris guard)
	WriteTimeout      time.Duration // response write budget
	IdleTimeout       time.Duration // keep-alive idle budget
	MaxHeaderBytes    int           // request header cap
	ShutdownGrace     time.Duration // drain budget used by Serve
}

// Defaults for unset ServerConfig fields: generous enough for the
// curated-corpus rebuild endpoints, tight enough that a stalled client
// cannot pin a connection forever.
const (
	DefaultReadTimeout       = 30 * time.Second
	DefaultReadHeaderTimeout = 5 * time.Second
	DefaultWriteTimeout      = 60 * time.Second
	DefaultIdleTimeout       = 2 * time.Minute
	DefaultMaxHeaderBytes    = 1 << 20 // 1 MiB
	DefaultShutdownGrace     = 15 * time.Second
)

func (c ServerConfig) withDefaults() ServerConfig {
	if c.ReadTimeout == 0 {
		c.ReadTimeout = DefaultReadTimeout
	}
	if c.ReadHeaderTimeout == 0 {
		c.ReadHeaderTimeout = DefaultReadHeaderTimeout
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = DefaultWriteTimeout
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = DefaultIdleTimeout
	}
	if c.MaxHeaderBytes == 0 {
		c.MaxHeaderBytes = DefaultMaxHeaderBytes
	}
	if c.ShutdownGrace == 0 {
		c.ShutdownGrace = DefaultShutdownGrace
	}
	return c
}

// NewServer builds an http.Server for h with every transport timeout
// configured (negative config values disable the corresponding
// timeout explicitly).
func NewServer(addr string, h http.Handler, cfg ServerConfig) *http.Server {
	cfg = cfg.withDefaults()
	clamp := func(d time.Duration) time.Duration {
		if d < 0 {
			return 0
		}
		return d
	}
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadTimeout:       clamp(cfg.ReadTimeout),
		ReadHeaderTimeout: clamp(cfg.ReadHeaderTimeout),
		WriteTimeout:      clamp(cfg.WriteTimeout),
		IdleTimeout:       clamp(cfg.IdleTimeout),
		MaxHeaderBytes:    cfg.MaxHeaderBytes,
	}
}

// Serve runs srv on ln until ctx is cancelled (typically by
// SIGINT/SIGTERM via signal.NotifyContext) or the listener fails, then
// drains gracefully: new connections are refused, in-flight requests
// get up to grace to complete, and only then are the stragglers'
// connections closed. It returns nil on a clean drain, the listener
// error if serving failed, or context.DeadlineExceeded if the grace
// period expired with requests still in flight.
func Serve(ctx context.Context, srv *http.Server, ln net.Listener, grace time.Duration) error {
	if grace <= 0 {
		grace = DefaultShutdownGrace
	}
	errc := make(chan error, 1)
	go func() {
		err := srv.Serve(ln)
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		errc <- err
	}()
	select {
	case err := <-errc:
		// The listener died on its own; nothing left to drain.
		return err
	case <-ctx.Done():
	}
	sctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		// Grace expired: force-close the remaining connections so the
		// process can exit rather than hang on a stuck client.
		srv.Close()
		return err
	}
	return nil
}
