// Package httpx is StoryPivot's HTTP resilience layer: the middleware
// stack and server plumbing that turn the demo handler into something
// that survives production traffic. It provides
//
//   - panic recovery (a panicking handler becomes a 500 and a metric,
//     not a dead process),
//   - per-request deadlines propagated through the request context,
//   - an admission gate that sheds load with 429 + Retry-After once the
//     in-flight cap is reached,
//   - request body size caps,
//   - status-aware access instrumentation (latency histogram plus
//     per-class counters, so half-written responses no longer count as
//     successes),
//
// and, in server.go, a fully-configured http.Server with graceful
// drain. Middleware compose with Chain; the canonical production order
// is Instrument → Recover → Gate → BodyLimit → Deadline → app (see
// DESIGN.md §3.9 for why instrumentation sits outermost and recovery
// just inside it).
package httpx

import (
	"context"
	"fmt"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Middleware wraps an http.Handler with additional behaviour.
type Middleware func(http.Handler) http.Handler

// Chain composes middleware so that the first argument is the
// outermost wrapper: Chain(a, b, c)(h) serves a(b(c(h))).
func Chain(mws ...Middleware) Middleware {
	return func(next http.Handler) http.Handler {
		for i := len(mws) - 1; i >= 0; i-- {
			next = mws[i](next)
		}
		return next
	}
}

// Resilience-layer instrumentation. Registered once on the Default
// registry; all instances of the middleware share them.
var (
	metPanics = obs.GetCounter("storypivot_http_panics_total",
		"handler panics recovered and converted to 500s")
	metShed = obs.GetCounter("storypivot_http_shed_total",
		"requests rejected with 429 by the admission gate")
	metInflight = obs.GetGauge("storypivot_http_inflight",
		"requests currently being served")
	metRequests = obs.GetCounter("storypivot_http_requests_total",
		"API requests served")
	metLatency = obs.GetHistogram("storypivot_http_request_seconds",
		"API request latency")
	metStatus = [5]*obs.Counter{
		obs.GetCounter("storypivot_http_responses_1xx_total", "responses with 1xx status"),
		obs.GetCounter("storypivot_http_responses_2xx_total", "responses with 2xx status"),
		obs.GetCounter("storypivot_http_responses_3xx_total", "responses with 3xx status"),
		obs.GetCounter("storypivot_http_responses_4xx_total", "responses with 4xx status"),
		obs.GetCounter("storypivot_http_responses_5xx_total", "responses with 5xx status"),
	}
)

// statusWriter records the status code and whether the header has been
// written, so instrumentation and recovery can tell what the client has
// already seen. Unwrap lets http.ResponseController reach the
// underlying writer's Flush/Hijack/deadline methods.
type statusWriter struct {
	http.ResponseWriter
	status int
	wrote  bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.status = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.status = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Recover converts handler panics into 500 responses and a
// storypivot_http_panics_total increment instead of killing the
// process. http.ErrAbortHandler is re-raised so net/http's own
// connection-abort protocol keeps working (it is the sanctioned way to
// drop a connection mid-response, not a bug to report).
func Recover() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw, ok := w.(*statusWriter)
			if !ok {
				sw = &statusWriter{ResponseWriter: w}
			}
			defer func() {
				v := recover()
				if v == nil {
					return
				}
				if err, ok := v.(error); ok && err == http.ErrAbortHandler {
					panic(v)
				}
				if v == http.ErrAbortHandler {
					panic(v)
				}
				metPanics.Inc()
				// Only attempt the 500 if the handler had not started
				// the response; otherwise the client already has a
				// status line and the best we can do is cut the
				// connection short (net/http closes it because the
				// handler never finished the body).
				if !sw.wrote {
					http.Error(sw, fmt.Sprintf("internal error: %v", v),
						http.StatusInternalServerError)
				}
			}()
			next.ServeHTTP(sw, r)
		})
	}
}

// Deadline attaches a per-request timeout to the request context.
// Handlers and the pipeline stages below them observe cancellation
// through ctx; the response is not forcibly interrupted (that is the
// server's WriteTimeout's job), so a handler that ignores its context
// degrades no worse than before.
func Deadline(d time.Duration) Middleware {
	return func(next http.Handler) http.Handler {
		if d <= 0 {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			ctx, cancel := context.WithTimeout(r.Context(), d)
			defer cancel()
			next.ServeHTTP(w, r.WithContext(ctx))
		})
	}
}

// RetryAfterSeconds converts a retry hint into the whole-second value
// the Retry-After header carries: rounded up (never telling the client
// to come back before the hint elapses) and clamped to at least 1, the
// smallest honest value the header's resolution can express. Every 429
// producer — the admission gate here and the per-tenant quota — must
// agree on this rounding so header and body hints never diverge.
func RetryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// Gate is a concurrency-limited admission gate: at most max requests
// are in flight at once; excess requests are shed immediately with
// 429 Too Many Requests and a Retry-After hint, which is cheaper for
// everyone than queueing them into a timeout.
type Gate struct {
	max        int64
	inflight   atomic.Int64
	retryAfter time.Duration
}

// NewGate creates a gate admitting up to max concurrent requests
// (max <= 0 means unlimited). retryAfter is the hint sent with 429s,
// rounded per RetryAfterSeconds.
func NewGate(max int, retryAfter time.Duration) *Gate {
	return &Gate{max: int64(max), retryAfter: retryAfter}
}

// Inflight returns the number of requests currently admitted.
func (g *Gate) Inflight() int { return int(g.inflight.Load()) }

// Middleware returns the admission-controlling wrapper.
func (g *Gate) Middleware() Middleware {
	return func(next http.Handler) http.Handler {
		if g.max <= 0 {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if n := g.inflight.Add(1); n > g.max {
				g.inflight.Add(-1)
				metShed.Inc()
				w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds(g.retryAfter)))
				http.Error(w, "server overloaded, retry later",
					http.StatusTooManyRequests)
				return
			}
			metInflight.Set(g.inflight.Load())
			defer func() {
				g.inflight.Add(-1)
				metInflight.Set(g.inflight.Load())
			}()
			next.ServeHTTP(w, r)
		})
	}
}

// BodyLimit caps request body size at maxBytes using
// http.MaxBytesReader, so a client cannot stream an unbounded document
// into the JSON decoder; oversized bodies surface as 413 from the
// decoding handler's error path.
func BodyLimit(maxBytes int64) Middleware {
	return func(next http.Handler) http.Handler {
		if maxBytes <= 0 {
			return next
		}
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Body != nil {
				r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
			}
			next.ServeHTTP(w, r)
		})
	}
}

// Instrument records every request into the access-latency histogram
// and the per-status-class counters. It observes the status actually
// written (handlers that write nothing count as the 200 net/http will
// send), and a request that unwinds with a panic — an aborted
// connection — is counted as 5xx rather than a success, so
// half-written responses no longer inflate the 2xx numbers.
func Instrument() Middleware {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			sw, ok := w.(*statusWriter)
			if !ok {
				sw = &statusWriter{ResponseWriter: w}
			}
			span := metLatency.Start()
			metRequests.Inc()
			completed := false
			defer func() {
				span.End()
				class := 4 // unwound mid-response: never a success
				if completed {
					if sw.wrote {
						class = sw.status/100 - 1
					} else {
						class = 1 // nothing written: net/http sends 200
					}
				}
				if class >= 0 && class < len(metStatus) {
					metStatus[class].Inc()
				}
			}()
			next.ServeHTTP(sw, r)
			completed = true
		})
	}
}

// Config bundles the knobs of the full production stack for Wrap.
type Config struct {
	MaxInflight    int           // admission gate cap; <=0 disables
	RetryAfter     time.Duration // 429 Retry-After hint
	RequestTimeout time.Duration // per-request context deadline; <=0 disables
	MaxBodyBytes   int64         // request body cap; <=0 disables
	// Quota, when set, is the per-tenant throttle middleware
	// (internal/quota, injected as a plain middleware so httpx stays
	// policy-free). It runs after the admission gate: the gate answers
	// "is the process saturated" for everyone, the quota answers "is
	// this tenant over contract" only for requests that were admitted.
	Quota Middleware
}

// Wrap applies the canonical production middleware stack to h:
// Instrument → Recover → Gate → Quota → BodyLimit → Deadline → h.
// Instrumentation is outermost so every outcome is counted — shed
// 429s, recovered-panic 500s (Recover returns normally after writing
// them), and aborts that unwind all the way out; recovery sits just
// inside so a panic in the admission gate, caps, or handler is
// contained; the gate precedes the body cap and deadline so shed
// requests cost nothing.
func Wrap(h http.Handler, cfg Config) http.Handler {
	gate := NewGate(cfg.MaxInflight, cfg.RetryAfter)
	mws := []Middleware{
		Instrument(),
		Recover(),
		gate.Middleware(),
	}
	if cfg.Quota != nil {
		mws = append(mws, cfg.Quota)
	}
	mws = append(mws,
		BodyLimit(cfg.MaxBodyBytes),
		Deadline(cfg.RequestTimeout),
	)
	return Chain(mws...)(h)
}
