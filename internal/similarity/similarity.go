// Package similarity implements the matching kernel of StoryPivot: the
// content and temporal similarity measures used by story identification
// (snippet vs. story) and story alignment (story vs. story).
//
// Per the paper (§2.2, §2.3), two snippets/stories are likely to belong
// together if their entities overlap, their descriptions are similar, and
// they are temporally close. The kernel therefore combines three signals:
//
//	sim = wE·JaccardWeighted(entities) + wD·Cosine(terms) + wT·TemporalDecay
//
// with configurable weights. All component similarities are in [0, 1] and
// symmetric, so the combination is too.
package similarity

import (
	"math"
	"time"

	"repro/internal/event"
)

// Weights configures the relative importance of the three signals. The
// zero value is invalid; use DefaultWeights.
type Weights struct {
	Entity      float64
	Description float64
	Temporal    float64
}

// DefaultWeights mirror the intuition of the paper's examples: shared
// entities are the strongest story signal, description overlap second,
// temporal proximity a tie-breaker.
func DefaultWeights() Weights {
	return Weights{Entity: 0.45, Description: 0.35, Temporal: 0.20}
}

// Normalized returns the weights scaled to sum to 1. If all weights are
// zero it returns DefaultWeights.
func (w Weights) Normalized() Weights {
	sum := w.Entity + w.Description + w.Temporal
	if sum <= 0 {
		return DefaultWeights()
	}
	return Weights{w.Entity / sum, w.Description / sum, w.Temporal / sum}
}

// CosineTerms computes the cosine similarity between two sparse term
// vectors given as token->weight maps. Empty vectors yield 0.
func CosineTerms(a, b map[string]float64) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	// Iterate the smaller map.
	if len(b) < len(a) {
		a, b = b, a
	}
	var dot float64
	for tok, wa := range a {
		if wb, ok := b[tok]; ok {
			dot += wa * wb
		}
	}
	if dot == 0 {
		return 0
	}
	na, nb := norm(a), norm(b)
	if na == 0 || nb == 0 {
		return 0
	}
	s := dot / (na * nb)
	// Guard against floating point drift slightly above 1.
	if s > 1 {
		s = 1
	}
	return s
}

// CosineTermsNorm is CosineTerms with the second vector's norm precomputed
// (stories cache their centroid norm).
func CosineTermsNorm(a, b map[string]float64, bNorm float64) float64 {
	if len(a) == 0 || len(b) == 0 || bNorm == 0 {
		return 0
	}
	var dot float64
	if len(a) <= len(b) {
		for tok, wa := range a {
			if wb, ok := b[tok]; ok {
				dot += wa * wb
			}
		}
	} else {
		for tok, wb := range b {
			if wa, ok := a[tok]; ok {
				dot += wa * wb
			}
		}
	}
	if dot == 0 {
		return 0
	}
	na := norm(a)
	if na == 0 {
		return 0
	}
	s := dot / (na * bNorm)
	if s > 1 {
		s = 1
	}
	return s
}

func norm(v map[string]float64) float64 {
	var sum float64
	for _, w := range v {
		sum += w * w
	}
	return math.Sqrt(sum)
}

// TermsToMap converts a snippet's sorted term slice into a token->weight
// map for vector arithmetic.
func TermsToMap(terms []event.Term) map[string]float64 {
	m := make(map[string]float64, len(terms))
	for _, t := range terms {
		m[t.Token] += t.Weight
	}
	return m
}

// EntityWeighter assigns a positive importance weight to an entity.
// IDF-style weighters down-weight ubiquitous entities ("Ukraine" appears
// in every story of a crisis month and carries little discriminating
// signal), which matters on the Zipf-distributed entity mentions of real
// event feeds. A nil EntityWeighter means uniform weights.
type EntityWeighter func(event.Entity) float64

// WeightedJaccardEntities is JaccardEntities with per-entity weights:
// Σw(A∩B) / Σw(A∪B). The slice must be sorted and deduplicated (the
// normalized-snippet invariant).
func WeightedJaccardEntities(a []event.Entity, b map[event.Entity]int, ew EntityWeighter) float64 {
	if ew == nil {
		return JaccardEntities(a, b)
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	var inter, union float64
	for _, e := range a {
		w := ew(e)
		union += w
		if b[e] > 0 {
			inter += w
		}
	}
	for e, n := range b {
		if n <= 0 {
			continue
		}
		// Entities of b not in a. a is sorted and deduplicated.
		if !containsEntity(a, e) {
			union += ew(e)
		}
	}
	if union == 0 {
		return 0
	}
	return inter / union
}

func containsEntity(a []event.Entity, e event.Entity) bool {
	lo, hi := 0, len(a)
	for lo < hi {
		mid := (lo + hi) / 2
		if a[mid] < e {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(a) && a[lo] == e
}

// WeightedJaccardEntitySets is JaccardEntitySets with per-entity weights.
func WeightedJaccardEntitySets(a, b map[event.Entity]int, ew EntityWeighter) float64 {
	if ew == nil {
		return JaccardEntitySets(a, b)
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	var inter, union float64
	for e, n := range a {
		if n <= 0 {
			continue
		}
		w := ew(e)
		union += w
		if b[e] > 0 {
			inter += w
		}
	}
	for e, n := range b {
		if n <= 0 {
			continue
		}
		if an, ok := a[e]; !ok || an <= 0 {
			union += ew(e)
		}
	}
	if union == 0 {
		return 0
	}
	return inter / union
}

// JaccardEntities computes the Jaccard coefficient |A∩B| / |A∪B| between a
// snippet's entity list (sorted, deduplicated) and a story's entity
// frequency map. Both empty yields 0 (no evidence is not a match).
func JaccardEntities(a []event.Entity, b map[event.Entity]int) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter := 0
	for _, e := range a {
		if b[e] > 0 {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// JaccardEntitySets computes the Jaccard coefficient between two entity
// frequency maps (story vs story).
func JaccardEntitySets(a, b map[event.Entity]int) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	if len(b) < len(a) {
		a, b = b, a
	}
	inter := 0
	for e := range a {
		if b[e] > 0 {
			inter++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// TemporalDecay maps the distance between two timestamps to (0, 1] with an
// exponential kernel exp(-|Δt| / scale). Identical timestamps score 1;
// at Δt = scale the score is 1/e ≈ 0.37.
func TemporalDecay(a, b time.Time, scale time.Duration) float64 {
	if scale <= 0 {
		if a.Equal(b) {
			return 1
		}
		return 0
	}
	dt := a.Sub(b)
	if dt < 0 {
		dt = -dt
	}
	return math.Exp(-float64(dt) / float64(scale))
}

// GapDecay maps a non-negative temporal gap between two story extents to
// [0, 1]: zero or negative gap (overlap) scores 1, decaying exponentially
// with the gap size afterwards.
func GapDecay(gap, scale time.Duration) float64 {
	if gap <= 0 {
		return 1
	}
	if scale <= 0 {
		return 0
	}
	return math.Exp(-float64(gap) / float64(scale))
}

// adaptive drops the entity and/or description component when either side
// carries no evidence for it, renormalising the remaining weights. Missing
// evidence (a snippet with no recognised entities, say) is thereby treated
// as "no signal" rather than "zero similarity", which keeps entity-less
// snippets attachable to their stories.
func adaptive(w Weights, hasEnt, hasDesc bool) Weights {
	we := w.Normalized()
	if !hasEnt {
		we.Entity = 0
	}
	if !hasDesc {
		we.Description = 0
	}
	sum := we.Entity + we.Description + we.Temporal
	if sum <= 0 {
		return Weights{Temporal: 1}
	}
	return Weights{we.Entity / sum, we.Description / sum, we.Temporal / sum}
}

// SnippetStory scores how well snippet s matches a story summarised by the
// given entity frequencies and term centroid (which may be windowed), with
// refTime the story-side reference timestamp for the temporal component
// (typically the timestamp of the story's nearest snippet). Components for
// which either side has no evidence are dropped and the weights
// renormalised.
func SnippetStory(s *event.Snippet, entities map[event.Entity]int,
	centroid map[string]float64, centroidNorm float64,
	refTime time.Time, scale time.Duration, w Weights) float64 {
	return SnippetStoryW(s, entities, centroid, centroidNorm, refTime, scale, w, nil)
}

// SnippetStoryW is SnippetStory with an optional entity weighter.
func SnippetStoryW(s *event.Snippet, entities map[event.Entity]int,
	centroid map[string]float64, centroidNorm float64,
	refTime time.Time, scale time.Duration, w Weights, ew EntityWeighter) float64 {
	we := adaptive(w,
		len(s.Entities) > 0 && len(entities) > 0,
		len(s.Terms) > 0 && len(centroid) > 0)
	sim := 0.0
	if we.Entity > 0 {
		sim += we.Entity * WeightedJaccardEntities(s.Entities, entities, ew)
	}
	if we.Description > 0 {
		sim += we.Description * CosineTermsNorm(TermsToMap(s.Terms), centroid, centroidNorm)
	}
	sim += we.Temporal * TemporalDecay(s.Timestamp, refTime, scale)
	return sim
}

// Snippets scores the similarity of two snippets directly (used by the
// split/merge connectivity graph and by align-vs-enrich classification).
// As in SnippetStory, components with no evidence on either side are
// dropped and the weights renormalised.
func Snippets(a, b *event.Snippet, scale time.Duration, w Weights) float64 {
	a.EnsureInterned()
	b.EnsureInterned()
	return SnippetsIDs(a, b, scale, w)
}

// cosineSortedTerms computes cosine similarity over two token-sorted term
// slices with a linear merge, avoiding map allocation on the hot path.
func cosineSortedTerms(a, b []event.Term) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	var dot, na, nb float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].Token == b[j].Token:
			dot += a[i].Weight * b[j].Weight
			i++
			j++
		case a[i].Token < b[j].Token:
			i++
		default:
			j++
		}
	}
	for _, t := range a {
		na += t.Weight * t.Weight
	}
	for _, t := range b {
		nb += t.Weight * t.Weight
	}
	if dot == 0 || na == 0 || nb == 0 {
		return 0
	}
	s := dot / math.Sqrt(na*nb)
	if s > 1 {
		s = 1
	}
	return s
}

// CosineSnippetTerms exposes the allocation-free sorted-slice cosine for
// callers that hold raw snippets.
func CosineSnippetTerms(a, b []event.Term) float64 { return cosineSortedTerms(a, b) }
