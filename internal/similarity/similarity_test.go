package similarity

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/event"
)

func day(d int) time.Time { return time.Date(2014, 7, d, 0, 0, 0, 0, time.UTC) }

func snip(id event.SnippetID, src event.SourceID, d int, ents []event.Entity, terms ...event.Term) *event.Snippet {
	s := &event.Snippet{ID: id, Source: src, Timestamp: day(d), Entities: ents, Terms: terms}
	s.Normalize()
	return s
}

func TestWeightsNormalized(t *testing.T) {
	w := Weights{Entity: 2, Description: 1, Temporal: 1}.Normalized()
	if math.Abs(w.Entity+w.Description+w.Temporal-1) > 1e-12 {
		t.Fatalf("normalized weights sum to %g", w.Entity+w.Description+w.Temporal)
	}
	if w.Entity != 0.5 {
		t.Errorf("Entity = %g, want 0.5", w.Entity)
	}
	// All-zero weights fall back to defaults.
	z := Weights{}.Normalized()
	if z != DefaultWeights() {
		t.Errorf("zero weights normalized to %+v", z)
	}
}

func TestCosineTerms(t *testing.T) {
	a := map[string]float64{"crash": 1, "plane": 1}
	b := map[string]float64{"crash": 1, "plane": 1}
	if got := CosineTerms(a, b); math.Abs(got-1) > 1e-12 {
		t.Errorf("identical vectors cosine = %g, want 1", got)
	}
	c := map[string]float64{"sanctions": 1}
	if got := CosineTerms(a, c); got != 0 {
		t.Errorf("orthogonal vectors cosine = %g, want 0", got)
	}
	if got := CosineTerms(nil, a); got != 0 {
		t.Errorf("empty vector cosine = %g, want 0", got)
	}
	// Scaling invariance.
	d := map[string]float64{"crash": 10, "plane": 10}
	if got := CosineTerms(a, d); math.Abs(got-1) > 1e-12 {
		t.Errorf("scaled vectors cosine = %g, want 1", got)
	}
}

func TestCosineSymmetryAndRangeQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	vocab := []string{"a", "b", "c", "d", "e", "f"}
	genVec := func() map[string]float64 {
		v := make(map[string]float64)
		for _, tok := range vocab {
			if rng.Intn(2) == 0 {
				v[tok] = rng.Float64() * 10
			}
		}
		return v
	}
	f := func(int64) bool {
		a, b := genVec(), genVec()
		s1, s2 := CosineTerms(a, b), CosineTerms(b, a)
		if math.Abs(s1-s2) > 1e-12 {
			return false
		}
		return s1 >= 0 && s1 <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCosineTermsNormMatchesCosineTerms(t *testing.T) {
	a := map[string]float64{"crash": 2, "plane": 1}
	b := map[string]float64{"crash": 1, "shot": 3}
	var nb float64
	for _, w := range b {
		nb += w * w
	}
	got := CosineTermsNorm(a, b, math.Sqrt(nb))
	want := CosineTerms(a, b)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("CosineTermsNorm = %g, CosineTerms = %g", got, want)
	}
	if CosineTermsNorm(a, b, 0) != 0 {
		t.Error("zero norm must yield 0")
	}
}

func TestJaccardEntities(t *testing.T) {
	story := map[event.Entity]int{"UKR": 3, "MAL": 1}
	if got := JaccardEntities([]event.Entity{"UKR", "MAL"}, story); got != 1 {
		t.Errorf("full overlap = %g, want 1", got)
	}
	if got := JaccardEntities([]event.Entity{"UKR", "RUS"}, story); got != 1.0/3 {
		t.Errorf("partial = %g, want 1/3", got)
	}
	if got := JaccardEntities(nil, story); got != 0 {
		t.Errorf("empty snippet = %g", got)
	}
	if got := JaccardEntities([]event.Entity{"UKR"}, nil); got != 0 {
		t.Errorf("empty story = %g", got)
	}
	// Zero-count entries in the story map are treated as absent.
	story2 := map[event.Entity]int{"UKR": 0}
	if got := JaccardEntities([]event.Entity{"UKR"}, story2); got != 0 {
		t.Errorf("zero-count entity counted: %g", got)
	}
}

func TestJaccardEntitySetsSymmetric(t *testing.T) {
	a := map[event.Entity]int{"A": 1, "B": 2, "C": 1}
	b := map[event.Entity]int{"B": 5, "C": 1, "D": 2}
	s1, s2 := JaccardEntitySets(a, b), JaccardEntitySets(b, a)
	if s1 != s2 {
		t.Fatalf("asymmetric: %g vs %g", s1, s2)
	}
	if want := 2.0 / 4.0; s1 != want {
		t.Fatalf("Jaccard = %g, want %g", s1, want)
	}
}

func TestTemporalDecay(t *testing.T) {
	scale := 24 * time.Hour
	if got := TemporalDecay(day(1), day(1), scale); got != 1 {
		t.Errorf("zero distance = %g", got)
	}
	oneDayApart := TemporalDecay(day(1), day(2), scale)
	if math.Abs(oneDayApart-1/math.E) > 1e-12 {
		t.Errorf("one scale apart = %g, want 1/e", oneDayApart)
	}
	// Symmetric.
	if TemporalDecay(day(2), day(1), scale) != oneDayApart {
		t.Error("TemporalDecay not symmetric")
	}
	// Degenerate scale.
	if TemporalDecay(day(1), day(2), 0) != 0 || TemporalDecay(day(1), day(1), 0) != 1 {
		t.Error("zero scale handling wrong")
	}
}

func TestGapDecay(t *testing.T) {
	if GapDecay(-time.Hour, time.Hour) != 1 || GapDecay(0, time.Hour) != 1 {
		t.Error("overlap must score 1")
	}
	if got := GapDecay(time.Hour, time.Hour); math.Abs(got-1/math.E) > 1e-12 {
		t.Errorf("gap=scale decay = %g", got)
	}
	if GapDecay(time.Hour, 0) != 0 {
		t.Error("zero scale with positive gap must be 0")
	}
}

func TestSnippetStoryScore(t *testing.T) {
	st := event.NewStory(1, "nyt")
	st.Add(snip(1, "nyt", 17, []event.Entity{"UKR", "MAL"}, event.Term{Token: "crash", Weight: 2}))
	st.Add(snip(2, "nyt", 18, []event.Entity{"UKR"}, event.Term{Token: "investig", Weight: 1}))

	matching := snip(3, "nyt", 18, []event.Entity{"UKR", "MAL"}, event.Term{Token: "crash", Weight: 1})
	unrelated := snip(4, "nyt", 18, []event.Entity{"ISL"}, event.Term{Token: "settlement", Weight: 1})

	w := DefaultWeights()
	scale := 3 * 24 * time.Hour
	sm := SnippetStoryIDs(matching, st.EntityFreq, st.Centroid, st.CentroidNorm(), day(18), scale, w, nil)
	su := SnippetStoryIDs(unrelated, st.EntityFreq, st.Centroid, st.CentroidNorm(), day(18), scale, w, nil)
	if !(sm > su) {
		t.Fatalf("matching snippet (%g) must outscore unrelated (%g)", sm, su)
	}
	if sm < 0 || sm > 1 || su < 0 || su > 1 {
		t.Fatalf("scores out of range: %g, %g", sm, su)
	}
}

func TestSnippetsPairScore(t *testing.T) {
	a := snip(1, "nyt", 17, []event.Entity{"MAL", "UKR"}, event.Term{Token: "crash", Weight: 1}, event.Term{Token: "plane", Weight: 1})
	b := snip(2, "wsj", 17, []event.Entity{"MAL", "UKR"}, event.Term{Token: "crash", Weight: 2}, event.Term{Token: "plane", Weight: 2})
	c := snip(3, "wsj", 17, []event.Entity{"GOOG"}, event.Term{Token: "search", Weight: 1})

	scale := 24 * time.Hour
	w := DefaultWeights()
	sab := Snippets(a, b, scale, w)
	sac := Snippets(a, c, scale, w)
	if !(sab > sac) {
		t.Fatalf("similar pair %g must outscore dissimilar %g", sab, sac)
	}
	if got := Snippets(b, a, scale, w); math.Abs(got-sab) > 1e-12 {
		t.Error("Snippets not symmetric")
	}
	// Identical snippets at same time score close to 1.
	if saa := Snippets(a, a, scale, w); math.Abs(saa-1) > 1e-9 {
		t.Errorf("self-similarity = %g, want 1", saa)
	}
}

func TestCosineSnippetTerms(t *testing.T) {
	a := []event.Term{{Token: "a", Weight: 1}, {Token: "b", Weight: 2}}
	b := []event.Term{{Token: "b", Weight: 2}, {Token: "c", Weight: 1}}
	got := CosineSnippetTerms(a, b)
	want := CosineTerms(map[string]float64{"a": 1, "b": 2}, map[string]float64{"b": 2, "c": 1})
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("sorted-slice cosine %g != map cosine %g", got, want)
	}
	if CosineSnippetTerms(nil, b) != 0 {
		t.Error("empty slice must yield 0")
	}
}

func TestStoriesSimilarity(t *testing.T) {
	cfg := DefaultStoryConfig()

	mk := func(id event.StoryID, src event.SourceID, days []int, term string, ents ...event.Entity) *event.Story {
		st := event.NewStory(id, src)
		for i, d := range days {
			st.Add(snip(event.SnippetID(uint64(id)*100+uint64(i)), src, d, ents, event.Term{Token: term, Weight: 1}))
		}
		return st
	}

	a := mk(1, "nyt", []int{17, 18, 20}, "crash", "UKR", "MAL")
	b := mk(2, "wsj", []int{17, 19, 20}, "crash", "UKR", "MAL")
	c := mk(3, "wsj", []int{17, 18}, "search", "GOOG")

	sab := Stories(a, b, cfg)
	sac := Stories(a, c, cfg)
	if !(sab > sac) {
		t.Fatalf("same-story pair %g must outscore different-story %g", sab, sac)
	}
	if sab <= 0 || sab > 1 {
		t.Fatalf("score out of range: %g", sab)
	}
	// Symmetry (centroid-norm caching must not break it).
	if sba := Stories(b, a, cfg); math.Abs(sab-sba) > 1e-9 {
		t.Fatalf("Stories not symmetric: %g vs %g", sab, sba)
	}
	// Empty story.
	empty := event.NewStory(9, "nyt")
	if Stories(a, empty, cfg) != 0 || Stories(empty, a, cfg) != 0 {
		t.Error("empty story similarity must be 0")
	}
}

func TestStoriesTemporalGapPenalty(t *testing.T) {
	cfg := DefaultStoryConfig()
	cfg.EvolutionBuckets = 0 // isolate the gap component

	mk := func(id event.StoryID, days []int) *event.Story {
		st := event.NewStory(id, "s")
		for i, d := range days {
			st.Add(snip(event.SnippetID(uint64(id)*100+uint64(i)), "s", d, []event.Entity{"UKR"}, event.Term{Token: "crash", Weight: 1}))
		}
		return st
	}
	base := mk(1, []int{1, 2, 3})
	near := mk(2, []int{3, 4})
	far := mk(3, []int{25, 26})
	if !(Stories(base, near, cfg) > Stories(base, far, cfg)) {
		t.Fatal("temporally distant story must score lower (paper §2.3)")
	}
}

func TestEvolutionSimilarity(t *testing.T) {
	// Same burst shape vs inverted shape.
	mk := func(id event.StoryID, days []int) *event.Story {
		st := event.NewStory(id, "s")
		for i, d := range days {
			st.Add(snip(event.SnippetID(uint64(id)*1000+uint64(i)), "s", d, []event.Entity{"E"}, event.Term{Token: "t", Weight: 1}))
		}
		return st
	}
	burstEarly := mk(1, []int{1, 1, 1, 2, 20})
	burstEarly2 := mk(2, []int{1, 1, 2, 2, 20})
	burstLate := mk(3, []int{1, 19, 20, 20, 20})

	same := evolutionSimilarity(burstEarly, burstEarly2, 8)
	diff := evolutionSimilarity(burstEarly, burstLate, 8)
	if !(same > diff) {
		t.Fatalf("same-shape evolution %g must exceed inverted %g", same, diff)
	}
	// Degenerate: all snippets at one instant.
	inst1, inst2 := mk(4, []int{5}), mk(5, []int{5})
	if got := evolutionSimilarity(inst1, inst2, 8); got != 1 {
		t.Errorf("degenerate span similarity = %g, want 1", got)
	}
}

func TestWeightedJaccardEntities(t *testing.T) {
	story := map[event.Entity]int{"POPULAR": 3, "RARE": 1}
	uniform := func(event.Entity) float64 { return 1 }
	// Uniform weights reduce to plain Jaccard. The slice follows the
	// normalized-snippet invariant: sorted, deduplicated.
	snip := []event.Entity{"OTHER", "POPULAR"}
	if got, want := WeightedJaccardEntities(snip, story, uniform),
		JaccardEntities(snip, story); math.Abs(got-want) > 1e-12 {
		t.Fatalf("uniform weighted %g != plain %g", got, want)
	}
	// Nil weighter delegates to plain Jaccard.
	if got, want := WeightedJaccardEntities(snip, story, nil),
		JaccardEntities(snip, story); got != want {
		t.Fatalf("nil weighter %g != plain %g", got, want)
	}
	// Down-weighting the shared popular entity lowers the score.
	idf := func(e event.Entity) float64 {
		if e == "POPULAR" {
			return 0.1
		}
		return 1
	}
	weighted := WeightedJaccardEntities(snip, story, idf)
	plain := JaccardEntities(snip, story)
	if !(weighted < plain) {
		t.Fatalf("IDF-weighted %g not below plain %g", weighted, plain)
	}
	// Empty sides.
	if WeightedJaccardEntities(nil, story, idf) != 0 ||
		WeightedJaccardEntities(snip, nil, idf) != 0 {
		t.Fatal("empty side must yield 0")
	}
	// Zero-count story entries are ignored.
	zeroed := map[event.Entity]int{"POPULAR": 0, "RARE": 1}
	if got := WeightedJaccardEntities([]event.Entity{"POPULAR"}, zeroed, idf); got != 0 {
		t.Fatalf("zero-count entity counted: %g", got)
	}
}

func TestWeightedJaccardEntitySets(t *testing.T) {
	a := map[event.Entity]int{"A": 1, "B": 2}
	b := map[event.Entity]int{"B": 1, "C": 4}
	uniform := func(event.Entity) float64 { return 1 }
	if got, want := WeightedJaccardEntitySets(a, b, uniform),
		JaccardEntitySets(a, b); math.Abs(got-want) > 1e-12 {
		t.Fatalf("uniform weighted %g != plain %g", got, want)
	}
	if got, want := WeightedJaccardEntitySets(a, b, nil), JaccardEntitySets(a, b); got != want {
		t.Fatalf("nil weighter %g != plain %g", got, want)
	}
	// Symmetry under weighting.
	idf := func(e event.Entity) float64 {
		if e == "B" {
			return 0.2
		}
		return 1
	}
	if s1, s2 := WeightedJaccardEntitySets(a, b, idf), WeightedJaccardEntitySets(b, a, idf); math.Abs(s1-s2) > 1e-12 {
		t.Fatalf("asymmetric: %g vs %g", s1, s2)
	}
	if WeightedJaccardEntitySets(nil, b, idf) != 0 || WeightedJaccardEntitySets(a, nil, idf) != 0 {
		t.Fatal("empty side must yield 0")
	}
	zeroA := map[event.Entity]int{"A": 0, "B": 1}
	zeroB := map[event.Entity]int{"B": 1, "C": 0}
	if got := WeightedJaccardEntitySets(zeroA, zeroB, idf); math.Abs(got-1) > 1e-12 {
		t.Fatalf("zero-count entries not ignored: %g", got)
	}
}

func TestAdaptiveWeighting(t *testing.T) {
	w := DefaultWeights()
	scale := 24 * time.Hour
	st := event.NewStory(1, "s")
	st.Add(snip(1, "s", 10, []event.Entity{"A"}, event.Term{Token: "x", Weight: 1}))

	// Snippet with no entities: entity component dropped, description and
	// temporal renormalised — a perfect description match at the same time
	// must score high, not be capped by the missing entity evidence.
	noEnt := &event.Snippet{ID: 2, Source: "s", Timestamp: day(10),
		Terms: []event.Term{{Token: "x", Weight: 1}}}
	noEnt.Normalize()
	got := SnippetStoryIDs(noEnt, st.EntityFreq, st.Centroid, st.CentroidNorm(), day(10), scale, w, nil)
	if got < 0.95 {
		t.Fatalf("entity-less perfect match scored %g", got)
	}
	// Snippet with no terms either: only temporal remains.
	bare := &event.Snippet{ID: 3, Source: "s", Timestamp: day(10)}
	got = SnippetStoryIDs(bare, st.EntityFreq, st.Centroid, st.CentroidNorm(), day(10), scale, w, nil)
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("temporal-only match scored %g", got)
	}
	// Snippets pairwise: one side entity-less.
	a := snip(4, "s", 10, []event.Entity{"A"}, event.Term{Token: "x", Weight: 1})
	b := &event.Snippet{ID: 5, Source: "s", Timestamp: day(10),
		Terms: []event.Term{{Token: "x", Weight: 1}}}
	b.Normalize()
	if got := Snippets(a, b, scale, w); got < 0.95 {
		t.Fatalf("pairwise adaptive score %g", got)
	}
}

func TestExtentGapDirections(t *testing.T) {
	cfg := DefaultStoryConfig()
	cfg.EvolutionBuckets = 0
	early := event.NewStory(1, "s")
	early.Add(snip(10, "s", 1, []event.Entity{"A"}, event.Term{Token: "x", Weight: 1}))
	late := event.NewStory(2, "t")
	late.Add(snip(11, "t", 20, []event.Entity{"A"}, event.Term{Token: "x", Weight: 1}))
	// Both directions produce the same gap decay.
	if s1, s2 := Stories(early, late, cfg), Stories(late, early, cfg); math.Abs(s1-s2) > 1e-9 {
		t.Fatalf("gap direction asymmetry: %g vs %g", s1, s2)
	}
}
