package similarity

import (
	"testing"
	"time"

	"repro/internal/event"
	"repro/internal/vocab"
)

// TestKernelAllocs pins the zero-allocation guarantee of the ID-space
// similarity kernels. Identification runs these per candidate comparison
// (hundreds of thousands of times on the Figure-7 workloads), so a single
// heap allocation here regresses the whole experiment — any drift from
// zero is a build-breaking regression, not a soft perf signal.
func TestKernelAllocs(t *testing.T) {
	a := []vocab.IDWeight{{ID: 1, W: 0.5}, {ID: 3, W: 1.5}, {ID: 7, W: 0.25}}
	b := []vocab.IDWeight{{ID: 1, W: 1.0}, {ID: 4, W: 2.0}, {ID: 7, W: 0.5}}
	an, bn := vocab.WeightNorm(a), vocab.WeightNorm(b)
	ids := []uint32{1, 4, 9}
	counts := []vocab.IDCount{{ID: 1, N: 2}, {ID: 4, N: 1}, {ID: 8, N: 3}}
	counts2 := []vocab.IDCount{{ID: 1, N: 1}, {ID: 8, N: 2}, {ID: 11, N: 1}}
	ew := func(uint32) float64 { return 0.5 }

	sn := &event.Snippet{
		ID: 1, Source: "nyt",
		Timestamp: time.Date(2014, 7, 17, 0, 0, 0, 0, time.UTC),
		Entities:  []event.Entity{"MAL", "UKR"},
		Terms:     []event.Term{{Token: "crash", Weight: 2}, {Token: "plane", Weight: 1}},
	}
	sn.Normalize()
	sn2 := sn.Clone()
	sn2.ID = 2
	sn2.Intern()
	ref := sn.Timestamp.Add(24 * time.Hour)

	kernels := map[string]func(){
		"CosineIDs":            func() { CosineIDs(a, b) },
		"CosineIDsNorm":        func() { CosineIDsNorm(a, an, b, bn) },
		"JaccardIDs":           func() { JaccardIDs(ids, counts) },
		"WeightedJaccardIDs":   func() { WeightedJaccardIDs(ids, counts, ew) },
		"JaccardIDSets":        func() { JaccardIDSets(counts, counts2) },
		"WeightedJaccardIDSets": func() { WeightedJaccardIDSets(counts, counts2, ew) },
		"SnippetStoryIDs": func() {
			SnippetStoryIDs(sn, counts, a, an, ref, 72*time.Hour, DefaultWeights(), ew)
		},
		"SnippetsIDs": func() { SnippetsIDs(sn, sn2, 72*time.Hour, DefaultWeights()) },
	}
	for name, fn := range kernels {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}
