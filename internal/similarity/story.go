package similarity

import (
	"math"
	"time"

	"repro/internal/event"
)

// StoryConfig parameterises story-vs-story similarity used by alignment.
type StoryConfig struct {
	// Weights for the combined score.
	Weights Weights
	// GapScale controls how quickly the temporal component decays with the
	// gap between the two stories' extents.
	GapScale time.Duration
	// EvolutionBuckets is the number of equal-width time buckets used to
	// compare story evolution shapes (0 disables the evolution component).
	EvolutionBuckets int
	// EvolutionWeight blends the evolution-shape similarity into the
	// description component (0..1).
	EvolutionWeight float64
	// EntityWeight optionally weights entities in the Jaccard component
	// (nil = uniform), keyed by interned entity symbol.
	EntityWeight IDWeighter
}

// DefaultStoryConfig returns the configuration used by the demo system.
func DefaultStoryConfig() StoryConfig {
	return StoryConfig{
		Weights:          DefaultWeights(),
		GapScale:         7 * 24 * time.Hour,
		EvolutionBuckets: 8,
		EvolutionWeight:  0.25,
	}
}

// Stories scores the similarity of two per-source stories, combining
// entity overlap, description-centroid cosine, evolution-shape similarity,
// and temporal-extent proximity (paper §2.3: "two stories are likely to
// refer to the same real-world story if their evolution is similar and
// their content is similar as well").
func Stories(a, b *event.Story, cfg StoryConfig) float64 {
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	w := cfg.Weights.Normalized()

	content := CosineIDsNorm(a.Centroid, a.CentroidNorm(), b.Centroid, b.CentroidNorm())
	if cfg.EvolutionBuckets > 1 && cfg.EvolutionWeight > 0 {
		evo := evolutionSimilarity(a, b, cfg.EvolutionBuckets)
		content = (1-cfg.EvolutionWeight)*content + cfg.EvolutionWeight*evo
	}

	sim := w.Entity * WeightedJaccardIDSets(a.EntityFreq, b.EntityFreq, cfg.EntityWeight)
	sim += w.Description * content
	sim += w.Temporal * GapDecay(extentGap(a, b), cfg.GapScale)
	return sim
}

// extentGap returns the temporal gap between the stories' extents; zero or
// negative when they overlap.
func extentGap(a, b *event.Story) time.Duration {
	switch {
	case a.End.Before(b.Start):
		return b.Start.Sub(a.End)
	case b.End.Before(a.Start):
		return a.Start.Sub(b.End)
	default:
		return 0
	}
}

// evolutionSimilarity compares the *shape* of two stories' evolution: each
// story's snippets are bucketed over the union extent into k equal-width
// intervals, producing an activity profile; the profiles are compared with
// cosine similarity. Two stories that burst and quiet down at the same
// times score high even if their overall volumes differ.
func evolutionSimilarity(a, b *event.Story, k int) float64 {
	start, end := a.Start, a.End
	if b.Start.Before(start) {
		start = b.Start
	}
	if b.End.After(end) {
		end = b.End
	}
	span := end.Sub(start)
	if span <= 0 {
		// All snippets at the same instant: identical (degenerate) shape.
		return 1
	}
	pa := profile(a, start, span, k)
	pb := profile(b, start, span, k)
	var dot, na, nb float64
	for i := 0; i < k; i++ {
		dot += pa[i] * pb[i]
		na += pa[i] * pa[i]
		nb += pb[i] * pb[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	s := dot / math.Sqrt(na*nb)
	if s > 1 {
		s = 1
	}
	return s
}

func profile(st *event.Story, start time.Time, span time.Duration, k int) []float64 {
	p := make([]float64, k)
	for _, s := range st.Snippets {
		idx := int(float64(s.Timestamp.Sub(start)) / float64(span) * float64(k))
		if idx >= k {
			idx = k - 1
		}
		if idx < 0 {
			idx = 0
		}
		p[idx]++
	}
	return p
}
