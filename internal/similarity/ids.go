package similarity

import (
	"time"

	"repro/internal/event"
	"repro/internal/vocab"
)

// ID-based kernels: the hot-path forms of the similarity measures,
// operating on the flat sorted sparse vectors of internal/vocab instead
// of string-keyed maps. Every function here is a linear merge walk over
// pre-sorted integer IDs and performs zero heap allocations per call
// (enforced by TestKernelAllocs).

// IDWeighter assigns a positive importance weight to an interned entity
// symbol. It is the ID-space analogue of EntityWeighter; nil means
// uniform weights.
type IDWeighter func(uint32) float64

// CosineIDs computes cosine similarity between two sorted weighted ID
// vectors. Empty vectors yield 0.
func CosineIDs(a, b []vocab.IDWeight) float64 {
	return CosineIDsNorm(a, vocab.WeightNorm(a), b, vocab.WeightNorm(b))
}

// CosineIDsNorm is CosineIDs with both norms precomputed (snippets and
// stories cache theirs), leaving only the merge-walk dot product.
func CosineIDsNorm(a []vocab.IDWeight, aNorm float64, b []vocab.IDWeight, bNorm float64) float64 {
	if len(a) == 0 || len(b) == 0 || aNorm == 0 || bNorm == 0 {
		return 0
	}
	var dot float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		ai, bj := a[i].ID, b[j].ID
		switch {
		case ai == bj:
			dot += a[i].W * b[j].W
			i++
			j++
		case ai < bj:
			i++
		default:
			j++
		}
	}
	if dot == 0 {
		return 0
	}
	s := dot / (aNorm * bNorm)
	if s > 1 {
		s = 1
	}
	return s
}

// JaccardIDs computes |A∩B| / |A∪B| between a snippet's sorted entity
// symbols and a story's entity frequency vector.
func JaccardIDs(a []uint32, b []vocab.IDCount) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j].ID:
			if b[j].N > 0 {
				inter++
			}
			i++
			j++
		case a[i] < b[j].ID:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// WeightedJaccardIDs is JaccardIDs with per-entity weights:
// Σw(A∩B) / Σw(A∪B).
func WeightedJaccardIDs(a []uint32, b []vocab.IDCount, ew IDWeighter) float64 {
	if ew == nil {
		return JaccardIDs(a, b)
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	var inter, union float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j].ID:
			w := ew(a[i])
			union += w
			if b[j].N > 0 {
				inter += w
			}
			i++
			j++
		case a[i] < b[j].ID:
			union += ew(a[i])
			i++
		default:
			if b[j].N > 0 {
				union += ew(b[j].ID)
			}
			j++
		}
	}
	for ; i < len(a); i++ {
		union += ew(a[i])
	}
	for ; j < len(b); j++ {
		if b[j].N > 0 {
			union += ew(b[j].ID)
		}
	}
	if union == 0 {
		return 0
	}
	return inter / union
}

// JaccardIDSets computes the Jaccard coefficient between two entity
// frequency vectors (story vs story).
func JaccardIDSets(a, b []vocab.IDCount) float64 {
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	inter, i, j := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].ID == b[j].ID:
			if a[i].N > 0 && b[j].N > 0 {
				inter++
			}
			i++
			j++
		case a[i].ID < b[j].ID:
			i++
		default:
			j++
		}
	}
	union := len(a) + len(b) - inter
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// WeightedJaccardIDSets is JaccardIDSets with per-entity weights.
func WeightedJaccardIDSets(a, b []vocab.IDCount, ew IDWeighter) float64 {
	if ew == nil {
		return JaccardIDSets(a, b)
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	var inter, union float64
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i].ID == b[j].ID:
			w := ew(a[i].ID)
			union += w
			if a[i].N > 0 && b[j].N > 0 {
				inter += w
			}
			i++
			j++
		case a[i].ID < b[j].ID:
			if a[i].N > 0 {
				union += ew(a[i].ID)
			}
			i++
		default:
			if b[j].N > 0 {
				union += ew(b[j].ID)
			}
			j++
		}
	}
	for ; i < len(a); i++ {
		if a[i].N > 0 {
			union += ew(a[i].ID)
		}
	}
	for ; j < len(b); j++ {
		if b[j].N > 0 {
			union += ew(b[j].ID)
		}
	}
	if union == 0 {
		return 0
	}
	return inter / union
}

// SnippetStoryIDs scores how well snippet s matches a story summarised by
// the given entity frequency and term centroid vectors (which may be
// windowed), with refTime the story-side reference timestamp for the
// temporal component. This is the identification hot path: it reads only
// the snippet's pre-interned TermIDs/EntityIDs/TermNorm and the story's
// flat aggregates, and allocates nothing.
func SnippetStoryIDs(s *event.Snippet, entities []vocab.IDCount,
	centroid []vocab.IDWeight, centroidNorm float64,
	refTime time.Time, scale time.Duration, w Weights, ew IDWeighter) float64 {
	we := adaptive(w,
		len(s.EntityIDs) > 0 && len(entities) > 0,
		len(s.TermIDs) > 0 && len(centroid) > 0)
	sim := 0.0
	if we.Entity > 0 {
		sim += we.Entity * WeightedJaccardIDs(s.EntityIDs, entities, ew)
	}
	if we.Description > 0 {
		sim += we.Description * CosineIDsNorm(s.TermIDs, s.TermNorm, centroid, centroidNorm)
	}
	sim += we.Temporal * TemporalDecay(s.Timestamp, refTime, scale)
	return sim
}

// SnippetsIDs scores the similarity of two interned snippets directly —
// the ID-space form of Snippets, used by the split/merge connectivity
// graph and align-vs-enrich classification.
func SnippetsIDs(a, b *event.Snippet, scale time.Duration, w Weights) float64 {
	we := adaptive(w,
		len(a.EntityIDs) > 0 && len(b.EntityIDs) > 0,
		len(a.TermIDs) > 0 && len(b.TermIDs) > 0)
	inter, i, j := 0, 0, 0
	for i < len(a.EntityIDs) && j < len(b.EntityIDs) {
		switch {
		case a.EntityIDs[i] == b.EntityIDs[j]:
			inter++
			i++
			j++
		case a.EntityIDs[i] < b.EntityIDs[j]:
			i++
		default:
			j++
		}
	}
	var je float64
	if union := len(a.EntityIDs) + len(b.EntityIDs) - inter; union > 0 {
		je = float64(inter) / float64(union)
	}
	sim := we.Entity * je
	sim += we.Description * CosineIDsNorm(a.TermIDs, a.TermNorm, b.TermIDs, b.TermNorm)
	sim += we.Temporal * TemporalDecay(a.Timestamp, b.Timestamp, scale)
	return sim
}
