// Package text implements the hand-rolled natural-language substrate that
// StoryPivot's extraction pipeline depends on: tokenisation, stopword
// filtering, Porter stemming, vocabulary management, and TF-IDF weighting.
//
// The paper delegates annotation to Open Calais; offline we reproduce the
// relevant output — entity mentions and weighted description terms — with
// these classical components (no external NLP libraries are available).
package text

import (
	"strings"
	"unicode"
)

// Tokenize splits raw text into lowercase word tokens. A token is a maximal
// run of letters, digits, or intra-word apostrophes/hyphens; everything else
// is a separator. Pure-digit runs are kept (dates and flight numbers carry
// signal in event data), but single characters are dropped as noise.
func Tokenize(s string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() >= 2 {
			tokens = append(tokens, b.String())
		}
		b.Reset()
	}
	runes := []rune(s)
	for i, r := range runes {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case (r == '\'' || r == '-') && b.Len() > 0 && i+1 < len(runes) &&
			(unicode.IsLetter(runes[i+1]) || unicode.IsDigit(runes[i+1])):
			// Intra-word apostrophe or hyphen: keep hyphen, drop apostrophe
			// (so "jet's" -> "jets", "pro-russia" -> "pro-russia").
			if r == '-' {
				b.WriteRune(r)
			}
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// Sentences splits text into sentences on '.', '!' and '?' boundaries
// followed by whitespace or end-of-text. It is intentionally simple: the
// extraction pipeline only needs rough excerpt boundaries, matching the
// paper's "breaks their text down based on paragraphs, title, etc."
func Sentences(s string) []string {
	var out []string
	start := 0
	runes := []rune(s)
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		if r == '.' || r == '!' || r == '?' {
			// Look ahead: sentence ends if next rune is space or EOT.
			if i+1 >= len(runes) || unicode.IsSpace(runes[i+1]) {
				sent := strings.TrimSpace(string(runes[start : i+1]))
				if sent != "" {
					out = append(out, sent)
				}
				start = i + 1
			}
		}
	}
	if tail := strings.TrimSpace(string(runes[start:])); tail != "" {
		out = append(out, tail)
	}
	return out
}

// Paragraphs splits a document into paragraphs on blank lines.
func Paragraphs(s string) []string {
	var out []string
	for _, p := range strings.Split(s, "\n\n") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
