package text

// Porter stemming algorithm (M.F. Porter, "An algorithm for suffix
// stripping", Program 14(3), 1980), implemented from the original paper.
// Stemming collapses inflected forms ("crashed", "crashing", "crashes")
// onto one stem so that description-term vectors of related snippets
// overlap even when wording differs.

// Stem returns the Porter stem of a lowercase word. Words shorter than
// three characters are returned unchanged, as in the reference
// implementation.
func Stem(word string) string {
	if len(word) <= 2 {
		return word
	}
	w := &stemWord{b: []byte(word)}
	w.step1a()
	w.step1b()
	w.step1c()
	w.step2()
	w.step3()
	w.step4()
	w.step5a()
	w.step5b()
	return string(w.b)
}

// StemAll stems every token in place and returns the slice.
func StemAll(tokens []string) []string {
	for i, t := range tokens {
		tokens[i] = Stem(t)
	}
	return tokens
}

type stemWord struct {
	b []byte
}

// isConsonant reports whether b[i] is a consonant in Porter's sense:
// letters other than a,e,i,o,u; 'y' is a consonant when preceded by a
// vowel position (or at position 0).
func (w *stemWord) isConsonant(i int) bool {
	switch w.b[i] {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	case 'y':
		if i == 0 {
			return true
		}
		return !w.isConsonant(i - 1)
	}
	return true
}

// measure computes m, the number of VC sequences in b[:end].
func (w *stemWord) measure(end int) int {
	n, i := 0, 0
	for i < end && w.isConsonant(i) {
		i++
	}
	for i < end {
		for i < end && !w.isConsonant(i) {
			i++
		}
		if i >= end {
			break
		}
		n++
		for i < end && w.isConsonant(i) {
			i++
		}
	}
	return n
}

// hasVowel reports whether b[:end] contains a vowel.
func (w *stemWord) hasVowel(end int) bool {
	for i := 0; i < end; i++ {
		if !w.isConsonant(i) {
			return true
		}
	}
	return false
}

// endsDoubleConsonant reports whether b[:end] ends in a double consonant.
func (w *stemWord) endsDoubleConsonant(end int) bool {
	if end < 2 {
		return false
	}
	return w.b[end-1] == w.b[end-2] && w.isConsonant(end-1)
}

// endsCVC reports whether b[:end] ends consonant-vowel-consonant where the
// final consonant is not w, x, or y.
func (w *stemWord) endsCVC(end int) bool {
	if end < 3 {
		return false
	}
	if !w.isConsonant(end-3) || w.isConsonant(end-2) || !w.isConsonant(end-1) {
		return false
	}
	switch w.b[end-1] {
	case 'w', 'x', 'y':
		return false
	}
	return true
}

// hasSuffix reports whether the word ends with s and, if so, returns the
// length of the stem before the suffix.
func (w *stemWord) hasSuffix(s string) (stemLen int, ok bool) {
	if len(w.b) < len(s) {
		return 0, false
	}
	off := len(w.b) - len(s)
	if string(w.b[off:]) != s {
		return 0, false
	}
	return off, true
}

// replace replaces the suffix of length sufLen with r.
func (w *stemWord) replace(sufLen int, r string) {
	w.b = append(w.b[:len(w.b)-sufLen], r...)
}

func (w *stemWord) step1a() {
	switch {
	case endsWith(w.b, "sses"):
		w.replace(2, "")
	case endsWith(w.b, "ies"):
		w.replace(2, "")
	case endsWith(w.b, "ss"):
		// keep
	case endsWith(w.b, "s"):
		w.replace(1, "")
	}
}

func (w *stemWord) step1b() {
	if stem, ok := w.hasSuffix("eed"); ok {
		if w.measure(stem) > 0 {
			w.replace(1, "")
		}
		return
	}
	applied := false
	if stem, ok := w.hasSuffix("ed"); ok && w.hasVowel(stem) {
		w.b = w.b[:stem]
		applied = true
	} else if stem, ok := w.hasSuffix("ing"); ok && w.hasVowel(stem) {
		w.b = w.b[:stem]
		applied = true
	}
	if !applied {
		return
	}
	switch {
	case endsWith(w.b, "at"), endsWith(w.b, "bl"), endsWith(w.b, "iz"):
		w.b = append(w.b, 'e')
	case w.endsDoubleConsonant(len(w.b)):
		last := w.b[len(w.b)-1]
		if last != 'l' && last != 's' && last != 'z' {
			w.b = w.b[:len(w.b)-1]
		}
	case w.measure(len(w.b)) == 1 && w.endsCVC(len(w.b)):
		w.b = append(w.b, 'e')
	}
}

func (w *stemWord) step1c() {
	if stem, ok := w.hasSuffix("y"); ok && w.hasVowel(stem) {
		w.b[len(w.b)-1] = 'i'
	}
}

// suffix rule table entry: suffix -> replacement, applied when measure of
// the remaining stem exceeds the threshold.
type rule struct{ suf, rep string }

var step2Rules = []rule{
	{"ational", "ate"}, {"tional", "tion"}, {"enci", "ence"}, {"anci", "ance"},
	{"izer", "ize"}, {"abli", "able"}, {"alli", "al"}, {"entli", "ent"},
	{"eli", "e"}, {"ousli", "ous"}, {"ization", "ize"}, {"ation", "ate"},
	{"ator", "ate"}, {"alism", "al"}, {"iveness", "ive"}, {"fulness", "ful"},
	{"ousness", "ous"}, {"aliti", "al"}, {"iviti", "ive"}, {"biliti", "ble"},
}

var step3Rules = []rule{
	{"icate", "ic"}, {"ative", ""}, {"alize", "al"}, {"iciti", "ic"},
	{"ical", "ic"}, {"ful", ""}, {"ness", ""},
}

var step4Suffixes = []string{
	"al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
	"ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
}

func (w *stemWord) applyRules(rules []rule, minMeasure int) {
	for _, r := range rules {
		if stem, ok := w.hasSuffix(r.suf); ok {
			if w.measure(stem) > minMeasure {
				w.replace(len(r.suf), r.rep)
			}
			return
		}
	}
}

func (w *stemWord) step2() { w.applyRules(step2Rules, 0) }
func (w *stemWord) step3() { w.applyRules(step3Rules, 0) }

func (w *stemWord) step4() {
	for _, suf := range step4Suffixes {
		stem, ok := w.hasSuffix(suf)
		if !ok {
			continue
		}
		if suf == "ion" {
			// "ion" is only removed after s or t.
			if stem == 0 || (w.b[stem-1] != 's' && w.b[stem-1] != 't') {
				return
			}
		}
		if w.measure(stem) > 1 {
			w.b = w.b[:stem]
		}
		return
	}
}

func (w *stemWord) step5a() {
	if stem, ok := w.hasSuffix("e"); ok {
		m := w.measure(stem)
		if m > 1 || (m == 1 && !w.endsCVC(stem)) {
			w.b = w.b[:stem]
		}
	}
}

func (w *stemWord) step5b() {
	n := len(w.b)
	if n > 1 && w.b[n-1] == 'l' && w.endsDoubleConsonant(n) && w.measure(n) > 1 {
		w.b = w.b[:n-1]
	}
}

func endsWith(b []byte, s string) bool {
	return len(b) >= len(s) && string(b[len(b)-len(s):]) == s
}
