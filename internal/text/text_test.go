package text

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	got := Tokenize("A Malaysian airplane crashed over Ukraine!")
	want := []string{"malaysian", "airplane", "crashed", "over", "ukraine"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Tokenize = %v, want %v", got, want)
	}
}

func TestTokenizeEdgeCases(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"", nil},
		{"   \t\n ", nil},
		{"...!!!", nil},
		{"a b c", nil}, // single chars dropped
		{"MH17 flight", []string{"mh17", "flight"}},    // alnum kept
		{"jet's downing", []string{"jets", "downing"}}, // apostrophe folded
		{"pro-Russia", []string{"pro-russia"}},         // intra-word hyphen kept
		{"end-", []string{"end"}},                      // trailing hyphen dropped
		{"-start", []string{"start"}},                  // leading hyphen dropped
		{"Ukraine,Russia;Malaysia", []string{"ukraine", "russia", "malaysia"}},
		{"UPPER lower MiXeD", []string{"upper", "lower", "mixed"}},
		{"über café", []string{"über", "café"}}, // unicode letters kept
	}
	for _, c := range cases {
		if got := Tokenize(c.in); !reflect.DeepEqual(got, c.want) {
			t.Errorf("Tokenize(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestTokenizeAlwaysLowercase(t *testing.T) {
	f := func(s string) bool {
		for _, tok := range Tokenize(s) {
			if tok != strings.ToLower(tok) {
				return false
			}
			if len(tok) < 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSentences(t *testing.T) {
	got := Sentences("The plane crashed. Investigators arrived! Why? No trailing")
	want := []string{"The plane crashed.", "Investigators arrived!", "Why?", "No trailing"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Sentences = %v, want %v", got, want)
	}
	// Abbreviation-ish: "U.S. officials" — period followed by space splits;
	// this is a documented simplification, just assert no crash/empty.
	if s := Sentences(""); s != nil {
		t.Errorf("Sentences(\"\") = %v", s)
	}
}

func TestParagraphs(t *testing.T) {
	got := Paragraphs("First para.\nStill first.\n\nSecond para.\n\n\n\nThird.")
	if len(got) != 3 {
		t.Fatalf("Paragraphs = %v, want 3", got)
	}
	if got[1] != "Second para." {
		t.Errorf("Paragraphs[1] = %q", got[1])
	}
}

func TestStopwords(t *testing.T) {
	if !IsStopword("the") || !IsStopword("dont") || IsStopword("ukraine") {
		t.Fatal("stopword membership wrong")
	}
	got := FilterStopwords([]string{"the", "plane", "was", "shot", "tragically"})
	want := []string{"plane", "shot", "tragically"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("FilterStopwords = %v, want %v", got, want)
	}
}

func TestPorterStemmer(t *testing.T) {
	// Canonical examples from Porter's paper plus news-domain words.
	cases := map[string]string{
		"caresses":     "caress",
		"ponies":       "poni",
		"ties":         "ti",
		"caress":       "caress",
		"cats":         "cat",
		"feed":         "feed",
		"agreed":       "agre",
		"plastered":    "plaster",
		"bled":         "bled",
		"motoring":     "motor",
		"sing":         "sing",
		"conflated":    "conflat",
		"troubled":     "troubl",
		"sized":        "size",
		"hopping":      "hop",
		"tanned":       "tan",
		"falling":      "fall",
		"hissing":      "hiss",
		"fizzed":       "fizz",
		"failing":      "fail",
		"filing":       "file",
		"happy":        "happi",
		"sky":          "sky",
		"relational":   "relat",
		"conditional":  "condit",
		"rational":     "ration",
		"valenci":      "valenc",
		"digitizer":    "digit",
		"operator":     "oper",
		"feudalism":    "feudal",
		"decisiveness": "decis",
		"hopefulness":  "hope",
		"formaliti":    "formal",
		"triplicate":   "triplic",
		"formative":    "form",
		"formalize":    "formal",
		"electriciti":  "electr",
		"electrical":   "electr",
		"hopeful":      "hope",
		"goodness":     "good",
		"revival":      "reviv",
		"allowance":    "allow",
		"inference":    "infer",
		"airliner":     "airlin",
		"adjustable":   "adjust",
		"defensible":   "defens",
		"irritant":     "irrit",
		"replacement":  "replac",
		"adjustment":   "adjust",
		"dependent":    "depend",
		"adoption":     "adopt",
		"homologou":    "homolog",
		"communism":    "commun",
		"activate":     "activ",
		"angulariti":   "angular",
		"homologous":   "homolog",
		"effective":    "effect",
		"bowdlerize":   "bowdler",
		"probate":      "probat",
		"rate":         "rate",
		"cease":        "ceas",
		"controll":     "control",
		"roll":         "roll",
		// news domain
		"crashed":       "crash",
		"crashes":       "crash",
		"crashing":      "crash",
		"investigation": "investig",
		"investigators": "investig",
		"sanctions":     "sanction",
		"separatists":   "separatist",
		"at":            "at", // short words untouched
		"be":            "be",
	}
	for in, want := range cases {
		if got := Stem(in); got != want {
			t.Errorf("Stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestStemIdempotentOnStems(t *testing.T) {
	// Stemming the inflection family collapses to one form.
	family := []string{"crash", "crashed", "crashes", "crashing"}
	stem := Stem(family[0])
	for _, w := range family {
		if got := Stem(w); got != stem {
			t.Errorf("Stem(%q) = %q, want %q", w, got, stem)
		}
	}
}

func TestStemAll(t *testing.T) {
	got := StemAll([]string{"planes", "falling"})
	want := []string{"plane", "fall"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("StemAll = %v, want %v", got, want)
	}
}

func TestCorpusIDF(t *testing.T) {
	c := NewCorpus()
	c.Observe([]string{"crash", "plane"})
	c.Observe([]string{"crash", "sanction"})
	c.Observe([]string{"crash"})
	if c.Docs() != 3 {
		t.Fatalf("Docs = %d", c.Docs())
	}
	// "crash" appears everywhere: lowest IDF. Unknown term: highest.
	if !(c.IDF("crash") < c.IDF("plane")) {
		t.Error("ubiquitous term should have lower IDF than rare term")
	}
	if !(c.IDF("plane") < c.IDF("zzz")) {
		t.Error("unseen term should have highest IDF")
	}
	if c.IDF("crash") <= 0 {
		t.Error("IDF must be positive")
	}
}

func TestCorpusObserveDeduplicates(t *testing.T) {
	c := NewCorpus()
	c.Observe([]string{"crash", "crash", "crash"})
	c.Observe([]string{"plane"})
	// df(crash) must be 1 (document frequency, not term frequency).
	if !(c.IDF("crash") == c.IDF("plane")) {
		t.Error("Observe must deduplicate tokens per document")
	}
}

func TestWeigh(t *testing.T) {
	c := NewCorpus()
	for i := 0; i < 10; i++ {
		c.Observe([]string{"common"})
	}
	c.Observe([]string{"rare", "common"})
	v := c.Weigh([]string{"rare", "common", "common"})
	if len(v) != 2 {
		t.Fatalf("Weigh returned %d terms", len(v))
	}
	// Sorted by token.
	if v[0].Token != "common" || v[1].Token != "rare" {
		t.Fatalf("Weigh not sorted: %v", v)
	}
	// rare has higher IDF; even though common has tf=2, sublinear tf keeps
	// rare on top here.
	if !(v[1].Weight > v[0].Weight) {
		t.Errorf("rare weight %g should exceed common weight %g", v[1].Weight, v[0].Weight)
	}
	if empty := c.Weigh(nil); len(empty) != 0 {
		t.Errorf("Weigh(nil) = %v", empty)
	}
}

func TestCorpusConcurrentUse(t *testing.T) {
	c := NewCorpus()
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 100; i++ {
				c.Observe([]string{"a", "b"})
				c.Weigh([]string{"a", "c"})
				c.IDF("b")
			}
		}()
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if c.Docs() != 400 {
		t.Fatalf("Docs = %d, want 400", c.Docs())
	}
}

func TestPipeline(t *testing.T) {
	got := Pipeline("The planes were crashing over Ukraine.")
	want := []string{"plane", "crash", "ukrain"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Pipeline = %v, want %v", got, want)
	}
}
