package text

import (
	"math"
	"sort"
	"sync"
)

// Corpus maintains document-frequency statistics over a growing stream of
// documents and assigns TF-IDF weights to term vectors. It is safe for
// concurrent use: the extraction pipeline annotates documents from multiple
// sources in parallel.
type Corpus struct {
	mu   sync.RWMutex
	df   map[string]int // document frequency per term
	docs int            // number of documents observed
}

// NewCorpus creates an empty corpus.
func NewCorpus() *Corpus {
	return &Corpus{df: make(map[string]int)}
}

// Observe updates document-frequency statistics with the (deduplicated)
// terms of one document.
func (c *Corpus) Observe(tokens []string) {
	seen := make(map[string]bool, len(tokens))
	c.mu.Lock()
	defer c.mu.Unlock()
	c.docs++
	for _, t := range tokens {
		if !seen[t] {
			seen[t] = true
			c.df[t]++
		}
	}
}

// Docs returns the number of documents observed so far.
func (c *Corpus) Docs() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.docs
}

// IDF returns the smoothed inverse document frequency of a term:
// log(1 + N/(1+df)). Unknown terms receive the maximum IDF, making rare
// terms the most discriminative, as is standard.
func (c *Corpus) IDF(term string) float64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.idfLocked(term)
}

func (c *Corpus) idfLocked(term string) float64 {
	return math.Log(1 + float64(c.docs)/float64(1+c.df[term]))
}

// Weigh converts a bag of tokens into a TF-IDF weighted term vector, sorted
// by token. Term frequency is sub-linear (1 + log tf), the common variant
// that prevents long documents from dominating.
func (c *Corpus) Weigh(tokens []string) []WeightedTerm {
	tf := make(map[string]int, len(tokens))
	for _, t := range tokens {
		tf[t]++
	}
	out := make([]WeightedTerm, 0, len(tf))
	c.mu.RLock()
	for t, f := range tf {
		w := (1 + math.Log(float64(f))) * c.idfLocked(t)
		out = append(out, WeightedTerm{Token: t, Weight: w})
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Token < out[j].Token })
	return out
}

// WeightedTerm pairs a token with its TF-IDF weight.
type WeightedTerm struct {
	Token  string
	Weight float64
}

// Pipeline is the canonical token pipeline used across StoryPivot:
// tokenise, drop stopwords, stem. It returns processing-ready tokens.
func Pipeline(s string) []string {
	return StemAll(FilterStopwords(Tokenize(s)))
}
