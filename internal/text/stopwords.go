package text

// stopwords is the classic English stopword list (SMART-derived subset)
// used to drop function words before TF-IDF weighting.
var stopwords = map[string]bool{}

func init() {
	for _, w := range stopwordList {
		stopwords[w] = true
	}
}

// IsStopword reports whether the (lowercase) token is an English stopword.
func IsStopword(tok string) bool { return stopwords[tok] }

// FilterStopwords returns tokens with stopwords removed. The input slice is
// not modified.
func FilterStopwords(tokens []string) []string {
	out := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if !stopwords[t] {
			out = append(out, t)
		}
	}
	return out
}

var stopwordList = []string{
	"a", "about", "above", "after", "again", "against", "all", "am", "an",
	"and", "any", "are", "aren't", "as", "at", "be", "because", "been",
	"before", "being", "below", "between", "both", "but", "by", "can",
	"cannot", "could", "couldn't", "did", "didn't", "do", "does", "doesn't",
	"doing", "don't", "down", "during", "each", "few", "for", "from",
	"further", "had", "hadn't", "has", "hasn't", "have", "haven't", "having",
	"he", "he'd", "he'll", "he's", "her", "here", "here's", "hers",
	"herself", "him", "himself", "his", "how", "how's", "i", "i'd", "i'll",
	"i'm", "i've", "if", "in", "into", "is", "isn't", "it", "it's", "its",
	"itself", "let's", "me", "more", "most", "mustn't", "my", "myself",
	"no", "nor", "not", "of", "off", "on", "once", "only", "or", "other",
	"ought", "our", "ours", "ourselves", "out", "over", "own", "same",
	"shan't", "she", "she'd", "she'll", "she's", "should", "shouldn't",
	"so", "some", "such", "than", "that", "that's", "the", "their",
	"theirs", "them", "themselves", "then", "there", "there's", "these",
	"they", "they'd", "they'll", "they're", "they've", "this", "those",
	"through", "to", "too", "under", "until", "up", "very", "was", "wasn't",
	"we", "we'd", "we'll", "we're", "we've", "were", "weren't", "what",
	"what's", "when", "when's", "where", "where's", "which", "while", "who",
	"who's", "whom", "why", "why's", "with", "won't", "would", "wouldn't",
	"you", "you'd", "you'll", "you're", "you've", "your", "yours",
	"yourself", "yourselves", "said", "says", "say", "also", "will", "may",
	"might", "must", "shall", "one", "two", "according", "mr", "ms",
	"mrs", "however", "since", "among", "per", "via", "etc",
	// Tokenize strips apostrophes, so include the apostrophe-free variants
	// of common contractions as well.
	"arent", "couldnt", "didnt", "doesnt", "dont", "hadnt", "hasnt",
	"havent", "hed", "hell", "hes", "heres", "hows", "id", "ill", "im",
	"ive", "isnt", "itll", "lets", "mustnt", "shant", "shed", "shell",
	"shes", "shouldnt", "thats", "theres", "theyd", "theyll", "theyre",
	"theyve", "wasnt", "wed", "weve", "werent", "whats", "whens", "wheres",
	"whos", "whys", "wont", "wouldnt", "youd", "youll", "youre", "youve",
}
