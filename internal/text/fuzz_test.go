package text

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzTokenize checks the tokenizer's contract over arbitrary input:
// it never panics, every token is at least two bytes of letters, digits,
// or intra-word hyphens, no token starts or ends with a hyphen, and
// tokenization is idempotent — feeding the tokens back in (space-joined)
// reproduces them exactly, which also pins down case-folding: a token is
// already in the form the tokenizer would produce.
func FuzzTokenize(f *testing.F) {
	// Seeds from the paper's running example and the tricky shapes the
	// unit tests cover.
	f.Add("A Malaysia Airlines Boeing 777 with 298 people aboard exploded, crashed and burned.")
	f.Add("pro-Russia separatists; the jet's crash — MH17!")
	f.Add("Google Inc. rival Yelp Inc. says the search giant is promoting its own content")
	f.Add("")
	f.Add("a b c d")
	f.Add("--x-- 'tis état-major café 'n' 123-456")
	f.Add("\x00\xff\xfe broken utf8 \xc3\x28")
	f.Add("ϒϒ ΣΣ İİ")

	f.Fuzz(func(t *testing.T, s string) {
		tokens := Tokenize(s)
		for _, tok := range tokens {
			if len(tok) < 2 {
				t.Fatalf("token %q shorter than 2 bytes", tok)
			}
			if strings.HasPrefix(tok, "-") || strings.HasSuffix(tok, "-") {
				t.Fatalf("token %q has a leading/trailing hyphen", tok)
			}
			if strings.Contains(tok, "--") {
				t.Fatalf("token %q contains consecutive hyphens", tok)
			}
			for _, r := range tok {
				if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '-' {
					t.Fatalf("token %q contains separator rune %q", tok, r)
				}
			}
		}
		again := Tokenize(strings.Join(tokens, " "))
		if len(again) != len(tokens) {
			t.Fatalf("re-tokenizing changed count: %v -> %v", tokens, again)
		}
		for i := range tokens {
			if again[i] != tokens[i] {
				t.Fatalf("re-tokenizing changed token %d: %q -> %q", i, tokens[i], again[i])
			}
		}
	})
}

// FuzzSentences checks the sentence splitter never panics, never drops
// non-whitespace content, and never emits blank sentences.
func FuzzSentences(f *testing.F) {
	f.Add("One. Two! Three? Four")
	f.Add("Mr. Smith went to Washington.")
	f.Add("")
	f.Add("...\n\n!?")
	f.Fuzz(func(t *testing.T, s string) {
		for _, sent := range Sentences(s) {
			if strings.TrimSpace(sent) == "" {
				t.Fatalf("blank sentence from %q", s)
			}
		}
	})
}
