package sourceprof

import (
	"testing"
	"time"

	"repro/internal/align"
	"repro/internal/datagen"
	"repro/internal/event"
	"repro/internal/identify"
)

func day(d int) time.Time { return time.Date(2014, 7, d, 0, 0, 0, 0, time.UTC) }

func snip(id event.SnippetID, src event.SourceID, d int, hours int, ents []event.Entity, toks ...string) *event.Snippet {
	s := &event.Snippet{ID: id, Source: src, Timestamp: day(d).Add(time.Duration(hours) * time.Hour), Entities: ents}
	for _, tok := range toks {
		s.Terms = append(s.Terms, event.Term{Token: tok, Weight: 1})
	}
	s.Normalize()
	return s
}

// fixture: "fast" reports each event first, "slow" reports the same events
// 12 hours later, and "solo" publishes an exclusive story.
func fixture() *align.Result {
	crash := []event.Entity{"UKR", "MAL"}
	fast := event.NewStory(1, "fast")
	fast.Add(snip(1, "fast", 17, 0, crash, "crash", "plane"))
	fast.Add(snip(2, "fast", 18, 0, crash, "investig", "crash"))
	slow := event.NewStory(2, "slow")
	slow.Add(snip(11, "slow", 17, 12, crash, "crash", "plane"))
	slow.Add(snip(12, "slow", 18, 12, crash, "investig", "crash"))
	solo := event.NewStory(3, "solo")
	solo.Add(snip(21, "solo", 17, 0, []event.Entity{"GOOG"}, "search", "antitrust"))

	return align.Align(map[event.SourceID][]*event.Story{
		"fast": {fast}, "slow": {slow}, "solo": {solo},
	}, align.DefaultConfig())
}

func TestBuildProfiles(t *testing.T) {
	res := fixture()
	if len(res.MultiSource()) != 1 {
		t.Skipf("fixture did not align (%d multi)", len(res.MultiSource()))
	}
	profiles := Build(res, DefaultConfig())
	if len(profiles) != 3 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	bysrc := map[event.SourceID]Profile{}
	for _, p := range profiles {
		bysrc[p.Source] = p
	}
	fast, slow, solo := bysrc["fast"], bysrc["slow"], bysrc["solo"]

	// Timeliness: fast leads, slow trails by ~12h.
	if fast.MeanLag != 0 {
		t.Errorf("fast MeanLag = %v, want 0", fast.MeanLag)
	}
	if slow.MeanLag < 6*time.Hour || slow.MeanLag > 18*time.Hour {
		t.Errorf("slow MeanLag = %v, want ~12h", slow.MeanLag)
	}
	if fast.FirstReports == 0 || slow.FirstReports != 0 {
		t.Errorf("first reports: fast=%d slow=%d", fast.FirstReports, slow.FirstReports)
	}
	// Coverage: fast and slow participate in the only multi-source story.
	if fast.Coverage != 1 || slow.Coverage != 1 || solo.Coverage != 0 {
		t.Errorf("coverage: fast=%.2f slow=%.2f solo=%.2f", fast.Coverage, slow.Coverage, solo.Coverage)
	}
	// Exclusivity: solo's snippets are all enriching.
	if solo.Exclusivity != 1 {
		t.Errorf("solo exclusivity = %.2f", solo.Exclusivity)
	}
	if fast.Entities == 0 || fast.Snippets != 2 || fast.Stories != 1 {
		t.Errorf("fast profile incomplete: %+v", fast)
	}
}

func TestRankPrefersTimelyCoveringSources(t *testing.T) {
	res := fixture()
	if len(res.MultiSource()) != 1 {
		t.Skip("fixture did not align")
	}
	ranked := Rank(Build(res, DefaultConfig()))
	if ranked[0].Source != "fast" {
		t.Fatalf("Rank top = %s, want fast", ranked[0].Source)
	}
}

func TestBuildOnGeneratedCorpus(t *testing.T) {
	gen := datagen.DefaultConfig()
	gen.Sources = 5
	gen.Stories = 8
	gen.EventsPerStory = 8
	c := datagen.Generate(gen)
	ids := identify.RunAll(c.Snippets, identify.DefaultConfig(), nil)
	res := align.Align(identify.StoriesBySource(ids), align.DefaultConfig())

	profiles := Build(res, DefaultConfig())
	if len(profiles) != 5 {
		t.Fatalf("profiles = %d", len(profiles))
	}
	totalSnips := 0
	for _, p := range profiles {
		totalSnips += p.Snippets
		if p.Coverage < 0 || p.Coverage > 1 || p.Exclusivity < 0 || p.Exclusivity > 1 {
			t.Errorf("profile out of range: %+v", p)
		}
		if p.MeanLag < 0 {
			t.Errorf("negative lag: %+v", p)
		}
	}
	if totalSnips != len(c.Snippets) {
		t.Fatalf("profiles cover %d of %d snippets", totalSnips, len(c.Snippets))
	}
	// The generator gives each source a fixed lag: sources with small lag
	// should post more first reports in aggregate. Just sanity-check that
	// someone reported first.
	firsts := 0
	for _, p := range profiles {
		firsts += p.FirstReports
	}
	if firsts == 0 {
		t.Fatal("no first reports attributed")
	}
}

func TestBuildEmptyResult(t *testing.T) {
	res := align.Align(nil, align.DefaultConfig())
	if got := Build(res, DefaultConfig()); len(got) != 0 {
		t.Fatalf("empty result profiles = %v", got)
	}
	// Zero-valued config falls back to defaults without panicking.
	res2 := fixture()
	if got := Build(res2, Config{}); len(got) == 0 {
		t.Fatal("zero config produced no profiles")
	}
}
