// Package sourceprof profiles data-source reporting behaviour from
// aligned StoryPivot results. The paper motivates this directly: "data
// sources have different perspectives on stories because they report the
// same story with varying content and with varying levels of timeliness"
// (§1), and the expert-scientist use case (§3) contrasts source bias.
//
// Given an alignment result, the profiler derives per-source metrics:
//
//   - Timeliness: how far behind the first reporter the source's aligning
//     snippets trail on average (local media lead, international media
//     follow — paper §2.4).
//   - Coverage: the fraction of multi-source integrated stories the
//     source participates in.
//   - Exclusivity: the fraction of the source's snippets that are
//     enriching (source-exclusive reports).
//   - Breadth: distinct entities the source mentioned.
package sourceprof

import (
	"math"
	"sort"
	"time"

	"repro/internal/align"
	"repro/internal/event"
	"repro/internal/similarity"
	"repro/internal/vocab"
)

// Profile is one source's reporting profile.
type Profile struct {
	Source event.SourceID

	// Snippets is the total number of snippets the source contributed.
	Snippets int
	// Stories is the number of per-source stories.
	Stories int
	// MultiSourceStories is the number of multi-source integrated stories
	// the source participates in.
	MultiSourceStories int
	// Coverage is MultiSourceStories / total multi-source stories.
	Coverage float64
	// MeanLag is the average delay of the source's aligning snippets
	// behind the earliest cross-source counterpart.
	MeanLag time.Duration
	// MedianLag is the median of the same delays.
	MedianLag time.Duration
	// FirstReports counts the aligning events this source reported first.
	FirstReports int
	// Exclusivity is the fraction of the source's snippets classified as
	// enriching.
	Exclusivity float64
	// Entities is the number of distinct entities mentioned.
	Entities int
}

// Config parameterises event grouping for timeliness.
type Config struct {
	// CounterpartScale is the temporal tolerance when pairing a snippet
	// with its cross-source counterparts (defaults to 3 days).
	CounterpartScale time.Duration
	// CounterpartThreshold is the minimum snippet similarity for a
	// counterpart (defaults to 0.35).
	CounterpartThreshold float64
	// Weights for snippet similarity.
	Weights similarity.Weights
}

// DefaultConfig returns the profiler defaults.
func DefaultConfig() Config {
	return Config{
		CounterpartScale:     3 * 24 * time.Hour,
		CounterpartThreshold: 0.35,
		Weights:              similarity.DefaultWeights(),
	}
}

// Build computes profiles for every source appearing in the result.
func Build(res *align.Result, cfg Config) []Profile {
	if cfg.CounterpartScale <= 0 {
		cfg.CounterpartScale = 3 * 24 * time.Hour
	}
	if cfg.CounterpartThreshold <= 0 {
		cfg.CounterpartThreshold = 0.35
	}

	type acc struct {
		snippets  int
		stories   int
		multi     map[event.IntegratedID]bool
		lags      []time.Duration
		firsts    int
		enriching int
		entities  map[event.Entity]bool
	}
	accs := map[event.SourceID]*acc{}
	get := func(src event.SourceID) *acc {
		a := accs[src]
		if a == nil {
			a = &acc{multi: map[event.IntegratedID]bool{}, entities: map[event.Entity]bool{}}
			accs[src] = a
		}
		return a
	}

	totalMulti := 0
	for _, is := range res.Integrated {
		multi := len(is.Sources()) > 1
		if multi {
			totalMulti++
		}
		for _, m := range is.Members {
			a := get(m.Source)
			a.stories++
			a.snippets += m.Len()
			if multi {
				a.multi[is.ID] = true
			}
			for _, ec := range m.EntityFreq {
				a.entities[event.Entity(vocab.Entities.String(ec.ID))] = true
			}
			for _, sn := range m.Snippets {
				if is.Roles[sn.ID] == event.RoleEnriching {
					a.enriching++
				}
			}
		}
		if multi {
			collectLags(is, cfg, func(src event.SourceID, lag time.Duration, first bool) {
				a := get(src)
				a.lags = append(a.lags, lag)
				if first {
					a.firsts++
				}
			})
		}
	}

	out := make([]Profile, 0, len(accs))
	for src, a := range accs {
		p := Profile{
			Source:             src,
			Snippets:           a.snippets,
			Stories:            a.stories,
			MultiSourceStories: len(a.multi),
			FirstReports:       a.firsts,
			Entities:           len(a.entities),
		}
		if totalMulti > 0 {
			p.Coverage = float64(len(a.multi)) / float64(totalMulti)
		}
		if a.snippets > 0 {
			p.Exclusivity = float64(a.enriching) / float64(a.snippets)
		}
		if len(a.lags) > 0 {
			var sum time.Duration
			for _, l := range a.lags {
				sum += l
			}
			p.MeanLag = sum / time.Duration(len(a.lags))
			sorted := append([]time.Duration(nil), a.lags...)
			sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
			p.MedianLag = sorted[len(sorted)/2]
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Source < out[j].Source })
	return out
}

// collectLags groups an integrated story's snippets into cross-source
// event clusters and reports, for each snippet of a multi-source cluster,
// its lag behind the cluster's earliest snippet. Clustering is greedy and
// chronological: a snippet joins the cluster of its most similar earlier
// *other-source* snippet within the counterpart scale. A cluster holds at
// most one report per source — it models "the same real-world event as
// reported by each source" — so consecutive distinct events of a story do
// not chain.
func collectLags(is *event.IntegratedStory, cfg Config,
	emit func(src event.SourceID, lag time.Duration, first bool)) {
	sns := is.Snippets() // chronological
	cluster := make([]int, len(sns))
	clusterSources := make(map[int]map[event.SourceID]bool)
	for i := range cluster {
		cluster[i] = i
	}
	for i, sn := range sns {
		bestSim := cfg.CounterpartThreshold
		best := -1
		for j := i - 1; j >= 0; j-- {
			if sn.Timestamp.Sub(sns[j].Timestamp) > cfg.CounterpartScale {
				break
			}
			if sns[j].Source == sn.Source {
				continue
			}
			root := cluster[j]
			if srcs := clusterSources[root]; srcs != nil && srcs[sn.Source] {
				continue // cluster already has this source's report
			}
			if s := similarity.Snippets(sn, sns[j], cfg.CounterpartScale, cfg.Weights); s >= bestSim {
				bestSim = s
				best = j
			}
		}
		root := i
		if best >= 0 {
			root = cluster[best]
		}
		cluster[i] = root
		srcs := clusterSources[root]
		if srcs == nil {
			srcs = make(map[event.SourceID]bool)
			clusterSources[root] = srcs
		}
		srcs[sn.Source] = true
	}
	groups := map[int][]*event.Snippet{}
	order := map[int]int{}
	for i, sn := range sns {
		root := cluster[i]
		if _, ok := order[root]; !ok {
			order[root] = len(order)
		}
		groups[root] = append(groups[root], sn)
	}
	for _, members := range groups {
		srcs := map[event.SourceID]bool{}
		for _, sn := range members {
			srcs[sn.Source] = true
		}
		if len(srcs) < 2 {
			continue // single-source cluster: no timeliness signal
		}
		first := members[0].Timestamp
		seenFirst := false
		for _, sn := range members {
			lag := sn.Timestamp.Sub(first)
			isFirst := !seenFirst && lag == 0
			if isFirst {
				seenFirst = true
			}
			emit(sn.Source, lag, isFirst)
		}
	}
}

// Rank orders profiles by a blended score favouring timely, broad, covering
// sources — the "which sources should an analyst watch" question raised by
// the source-selection literature the paper cites ([4], [15]).
func Rank(profiles []Profile) []Profile {
	out := append([]Profile(nil), profiles...)
	score := func(p Profile) float64 {
		lagPenalty := 0.0
		if p.MeanLag > 0 {
			lagPenalty = math.Log1p(p.MeanLag.Hours())
		}
		return p.Coverage*3 + float64(p.FirstReports)*0.1 - lagPenalty*0.1 + p.Exclusivity
	}
	sort.SliceStable(out, func(i, j int) bool { return score(out[i]) > score(out[j]) })
	return out
}
