package quota

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// fakeClock advances only when told, so refill arithmetic is exact.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestBucketBurstAndRefill(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(Limit{RPS: 2, Burst: 3})
	l.SetNow(clk.now)

	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("t1"); !ok {
			t.Fatalf("burst request %d refused", i)
		}
	}
	ok, retry := l.Allow("t1")
	if ok {
		t.Fatal("4th immediate request admitted past burst")
	}
	if retry <= 0 || retry > time.Second {
		t.Fatalf("retry = %v, want (0, 500ms]-ish at 2 rps", retry)
	}
	// 500ms at 2 rps refills exactly one token.
	clk.advance(500 * time.Millisecond)
	if ok, _ := l.Allow("t1"); !ok {
		t.Fatal("request refused after refill interval")
	}
	if ok, _ := l.Allow("t1"); ok {
		t.Fatal("second request admitted from a single refilled token")
	}
}

func TestTenantsIsolated(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(Limit{RPS: 1, Burst: 1})
	l.SetNow(clk.now)
	if ok, _ := l.Allow("a"); !ok {
		t.Fatal("tenant a refused its first request")
	}
	if ok, _ := l.Allow("a"); ok {
		t.Fatal("tenant a admitted past burst")
	}
	// Tenant b has its own bucket.
	if ok, _ := l.Allow("b"); !ok {
		t.Fatal("tenant b starved by tenant a")
	}
}

func TestUnlimitedDefaultAndOverride(t *testing.T) {
	l := NewLimiter(Limit{}) // unlimited default
	for i := 0; i < 1000; i++ {
		if ok, _ := l.Allow("x"); !ok {
			t.Fatal("unlimited default refused a request")
		}
	}
	clk := newFakeClock()
	l.SetNow(clk.now)
	l.SetOverride("x", Limit{RPS: 1, Burst: 2})
	if ok, _ := l.Allow("x"); !ok {
		t.Fatal("override burst refused")
	}
	if ok, _ := l.Allow("x"); !ok {
		t.Fatal("override burst refused")
	}
	if ok, _ := l.Allow("x"); ok {
		t.Fatal("override not enforced")
	}
	l.ClearOverride("x")
	if ok, _ := l.Allow("x"); !ok {
		t.Fatal("cleared override did not fall back to unlimited default")
	}
}

func TestLiveShrinkTakesEffectImmediately(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(Limit{RPS: 100, Burst: 100})
	l.SetNow(clk.now)
	if ok, _ := l.Allow("t"); !ok {
		t.Fatal("warm-up refused")
	}
	// Shrink to 1 token burst: the 99 banked tokens must be clamped.
	l.SetOverride("t", Limit{RPS: 1, Burst: 1})
	if ok, _ := l.Allow("t"); !ok {
		t.Fatal("first post-shrink request refused (clamp should leave 1)")
	}
	if ok, _ := l.Allow("t"); ok {
		t.Fatal("banked burst survived a live quota shrink")
	}
}

func TestApplyUpdate(t *testing.T) {
	l := NewLimiter(Limit{RPS: 5, Burst: 5})
	var u Update
	if err := json.Unmarshal([]byte(`{
		"default": {"rps": 2, "burst": 4},
		"tenants": [
			{"tenant": "gold", "rps": 100, "burst": 200},
			{"tenant": "old", "clear": true}
		]
	}`), &u); err != nil {
		t.Fatal(err)
	}
	if err := l.Apply(u); err != nil {
		t.Fatal(err)
	}
	if got := l.Default(); got.RPS != 2 || got.Burst != 4 {
		t.Fatalf("default = %+v, want {2 4}", got)
	}
	if got := l.Limit("gold"); got.RPS != 100 || got.Burst != 200 {
		t.Fatalf("gold = %+v, want {100 200}", got)
	}
	snap := l.Snapshot()
	if len(snap.Overrides) != 1 || snap.Overrides[0].Tenant != "gold" {
		t.Fatalf("overrides = %+v, want exactly [gold]", snap.Overrides)
	}

	if err := l.Apply(Update{Tenants: []struct {
		Tenant string `json:"tenant"`
		Clear  bool   `json:"clear,omitempty"`
		Limit
	}{{Tenant: ""}}}); err == nil {
		t.Fatal("empty tenant accepted")
	}
}

func TestTenantExtraction(t *testing.T) {
	r := httptest.NewRequest("GET", "/api/search?q=x", nil)
	if got := Tenant(r); got != "anonymous" {
		t.Fatalf("no credentials: tenant = %q, want anonymous", got)
	}
	r = httptest.NewRequest("GET", "/api/search?q=x&api_key=qp", nil)
	if got := Tenant(r); got != "qp" {
		t.Fatalf("query param: tenant = %q, want qp", got)
	}
	r.Header.Set("X-API-Key", "hdr")
	if got := Tenant(r); got != "hdr" {
		t.Fatalf("header beats query param: tenant = %q, want hdr", got)
	}
}

func TestMeteredPaths(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"/api/search", true},
		{"/api/timeline", true},
		{"/api/admin/quotas", false},
		{"/healthz", false},
		{"/metrics", false},
		{"/", false},
		{"/api/", true},
	}
	for _, c := range cases {
		if got := Metered(c.path); got != c.want {
			t.Errorf("Metered(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestMiddlewareThrottleResponse(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(Limit{RPS: 1, Burst: 1})
	l.SetNow(clk.now)
	h := Middleware(l)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/search?q=a", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("first request: %d, want 200", rec.Code)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/search?q=a", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("throttled request: %d, want 429", rec.Code)
	}
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Fatal("throttled response missing Retry-After")
	} else if n, err := strconv.Atoi(ra); err != nil || n < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", ra)
	}
	var body struct {
		Error  string `json:"error"`
		Tenant string `json:"tenant"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("429 body is not JSON: %v (%q)", err, rec.Body.String())
	}
	if body.Error != "tenant quota exceeded" || body.Tenant != "anonymous" {
		t.Fatalf("429 body = %+v", body)
	}

	// Unmetered paths pass even for the throttled tenant.
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/admin/quotas", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("admin path throttled: %d, want 200", rec.Code)
	}
}

func TestLimiterConcurrency(t *testing.T) {
	l := NewLimiter(Limit{RPS: 1000, Burst: 100})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tenant := "t" + strconv.Itoa(i%3)
			for j := 0; j < 500; j++ {
				l.Allow(tenant)
				if j%100 == 0 {
					l.SetOverride(tenant, Limit{RPS: float64(j + 1), Burst: j + 1})
				}
			}
		}(i)
	}
	wg.Wait()
}

// The throttle response carries the retry hint twice — the Retry-After
// header and the JSON body's retry_after_seconds. They must agree:
// clients that read only the body would otherwise retry earlier than
// the header allows (the body used to carry the raw fractional wait
// while the header ceiled it).
func TestThrottleBodyMatchesRetryAfterHeader(t *testing.T) {
	clk := newFakeClock()
	l := NewLimiter(Limit{RPS: 1, Burst: 1})
	l.SetNow(clk.now)
	h := Middleware(l)(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/search?q=a", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("first request: %d, want 200", rec.Code)
	}
	// Partial refill: 0.25 tokens banked, so the true wait is a
	// fractional 0.75s and header vs body can only agree by rounding
	// to the same whole second.
	clk.advance(250 * time.Millisecond)

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/api/search?q=a", nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("throttled request: %d, want 429", rec.Code)
	}
	n, err := strconv.Atoi(rec.Header().Get("Retry-After"))
	if err != nil || n < 1 {
		t.Fatalf("Retry-After = %q, want integer >= 1", rec.Header().Get("Retry-After"))
	}
	var body struct {
		RetryAfter float64 `json:"retry_after_seconds"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("429 body is not JSON: %v (%q)", err, rec.Body.String())
	}
	if body.RetryAfter != float64(n) {
		t.Fatalf("retry_after_seconds = %v but Retry-After header = %d; the two hints disagree", body.RetryAfter, n)
	}
	if body.RetryAfter < 1 {
		t.Fatalf("retry_after_seconds = %v, want >= 1", body.RetryAfter)
	}
}
