// Package quota implements per-tenant request quotas for the query
// API: a registry of token buckets keyed by tenant (API key), with a
// resolved default limit, per-tenant overrides that can be inspected
// and changed at runtime, and an http.Handler middleware that throttles
// with 429 + Retry-After. It exists so one hot tenant cannot starve the
// others of the serving capacity the admission gate (internal/httpx)
// protects globally: the gate sheds when the *process* is saturated,
// the quota throttles when a *tenant* exceeds its contract, and the two
// answer with distinguishable 429s.
package quota

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/httpx"
	"repro/internal/obs"
)

var (
	metAllowed   = obs.GetCounter("storypivot_quota_allowed_total", "API requests admitted by the per-tenant quota")
	metThrottled = obs.GetCounter("storypivot_quota_throttled_total", "API requests rejected with 429 by the per-tenant quota")
)

// Limit is a tenant's contract: a sustained rate and a burst size.
// RPS <= 0 means unlimited (no bucket is maintained at all); Burst < 1
// is rounded up to 1 so a positive rate always admits single requests.
type Limit struct {
	RPS   float64 `json:"rps"`
	Burst int     `json:"burst"`
}

// Unlimited reports whether the limit admits everything.
func (l Limit) Unlimited() bool { return l.RPS <= 0 }

func (l Limit) normalized() Limit {
	if l.Unlimited() {
		return Limit{}
	}
	if l.Burst < 1 {
		l.Burst = 1
	}
	return l
}

// bucket is a classic token bucket, refilled lazily on each Take from
// the elapsed wall time. Guarded by the Limiter's mutex: quota checks
// are a few arithmetic ops, far off the serving hot path's scale, and
// a single lock keeps live limit updates trivially consistent.
type bucket struct {
	limit  Limit
	tokens float64
	last   time.Time
}

// take refills from elapsed time and tries to spend one token. When it
// fails it returns how long until one token will be available.
func (b *bucket) take(now time.Time) (ok bool, wait time.Duration) {
	if b.limit.Unlimited() {
		return true, 0
	}
	if now.After(b.last) {
		b.tokens += now.Sub(b.last).Seconds() * b.limit.RPS
		if max := float64(b.limit.Burst); b.tokens > max {
			b.tokens = max
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	need := (1 - b.tokens) / b.limit.RPS // seconds until the next token
	return false, time.Duration(math.Ceil(need * float64(time.Second)))
}

// Limiter is the tenant registry. Safe for concurrent use.
type Limiter struct {
	mu        sync.Mutex
	def       Limit
	overrides map[string]Limit
	buckets   map[string]*bucket
	now       func() time.Time
}

// NewLimiter creates a limiter whose tenants fall back to def unless
// overridden. A def with RPS <= 0 admits unknown tenants unlimited.
func NewLimiter(def Limit) *Limiter {
	return &Limiter{
		def:       def.normalized(),
		overrides: make(map[string]Limit),
		buckets:   make(map[string]*bucket),
		now:       time.Now,
	}
}

// SetNow overrides the clock (tests only).
func (l *Limiter) SetNow(now func() time.Time) {
	l.mu.Lock()
	l.now = now
	l.mu.Unlock()
}

// Allow spends one token from the tenant's bucket. On refusal it
// returns the duration after which a retry can succeed.
func (l *Limiter) Allow(tenant string) (ok bool, retryAfter time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	limit := l.limitLocked(tenant)
	if limit.Unlimited() {
		return true, 0
	}
	b := l.buckets[tenant]
	if b == nil {
		b = &bucket{limit: limit, tokens: float64(limit.Burst), last: l.now()}
		l.buckets[tenant] = b
	}
	return b.take(l.now())
}

func (l *Limiter) limitLocked(tenant string) Limit {
	if lim, ok := l.overrides[tenant]; ok {
		return lim
	}
	return l.def
}

// Limit returns the tenant's effective limit.
func (l *Limiter) Limit(tenant string) Limit {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.limitLocked(tenant)
}

// Default returns the fallback limit for tenants without an override.
func (l *Limiter) Default() Limit {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.def
}

// SetDefault replaces the fallback limit, rebasing the buckets of all
// tenants without an override so the new limit takes effect at once.
func (l *Limiter) SetDefault(lim Limit) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.def = lim.normalized()
	for tenant, b := range l.buckets {
		if _, ok := l.overrides[tenant]; ok {
			continue
		}
		l.rebaseLocked(tenant, b, l.def)
	}
}

// SetOverride installs (or, with an unlimited limit and drop=true,
// removes) a tenant's override and rebases its live bucket.
func (l *Limiter) SetOverride(tenant string, lim Limit) {
	l.mu.Lock()
	defer l.mu.Unlock()
	lim = lim.normalized()
	l.overrides[tenant] = lim
	if b := l.buckets[tenant]; b != nil {
		l.rebaseLocked(tenant, b, lim)
	}
}

// ClearOverride removes a tenant's override; it falls back to the
// default.
func (l *Limiter) ClearOverride(tenant string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.overrides, tenant)
	if b := l.buckets[tenant]; b != nil {
		l.rebaseLocked(tenant, b, l.def)
	}
}

// rebaseLocked applies a new limit to a live bucket. Tokens are
// clamped to the new burst so shrinking a quota takes effect without
// waiting for an old, larger burst to drain.
func (l *Limiter) rebaseLocked(tenant string, b *bucket, lim Limit) {
	if lim.Unlimited() {
		delete(l.buckets, tenant)
		return
	}
	b.limit = lim
	if max := float64(lim.Burst); b.tokens > max {
		b.tokens = max
	}
}

// Overrides returns a sorted snapshot of the per-tenant overrides.
func (l *Limiter) Overrides() []TenantLimit {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]TenantLimit, 0, len(l.overrides))
	for t, lim := range l.overrides {
		out = append(out, TenantLimit{Tenant: t, Limit: lim})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// TenantLimit pairs a tenant with its limit for the admin API.
type TenantLimit struct {
	Tenant string `json:"tenant"`
	Limit
}

// Snapshot is the GET /api/admin/quotas payload.
type Snapshot struct {
	Default   Limit         `json:"default"`
	Overrides []TenantLimit `json:"overrides"`
}

// Snapshot returns the full quota configuration.
func (l *Limiter) Snapshot() Snapshot {
	return Snapshot{Default: l.Default(), Overrides: l.Overrides()}
}

// Update is the PUT /api/admin/quotas payload: an optional new default
// plus tenant overrides. A tenant with "clear": true drops back to the
// default.
type Update struct {
	Default *Limit `json:"default,omitempty"`
	Tenants []struct {
		Tenant string `json:"tenant"`
		Clear  bool   `json:"clear,omitempty"`
		Limit
	} `json:"tenants,omitempty"`
}

// Apply validates and applies an update atomically enough for the
// admin API: each entry takes effect immediately and independently.
func (l *Limiter) Apply(u Update) error {
	for _, t := range u.Tenants {
		if t.Tenant == "" {
			return fmt.Errorf("quota: tenant entry with empty tenant")
		}
	}
	if u.Default != nil {
		l.SetDefault(*u.Default)
	}
	for _, t := range u.Tenants {
		if t.Clear {
			l.ClearOverride(t.Tenant)
		} else {
			l.SetOverride(t.Tenant, t.Limit)
		}
	}
	return nil
}

// Tenant extracts the requester's identity: the X-API-Key header, else
// the api_key query parameter, else "anonymous". The fallback keeps
// unauthenticated demo traffic in one shared bucket instead of
// unlimited.
func Tenant(r *http.Request) string {
	if k := r.Header.Get("X-API-Key"); k != "" {
		return k
	}
	if k := r.URL.Query().Get("api_key"); k != "" {
		return k
	}
	return "anonymous"
}

// throttleBody is the 429 payload. A JSON object (vs the admission
// gate's plain-text "server overloaded, retry later") so clients and
// the conformance suite can tell "you are over your quota" from "the
// server is saturated".
type throttleBody struct {
	Error      string  `json:"error"`
	Tenant     string  `json:"tenant"`
	RetryAfter float64 `json:"retry_after_seconds"`
}

// Middleware throttles requests per tenant. Only query API paths are
// metered: health, metrics, and the admin endpoints stay reachable so
// a throttled operator can still raise their own quota.
func Middleware(l *Limiter) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if !Metered(r.URL.Path) {
				next.ServeHTTP(w, r)
				return
			}
			tenant := Tenant(r)
			ok, retry := l.Allow(tenant)
			if ok {
				metAllowed.Inc()
				next.ServeHTTP(w, r)
				return
			}
			metThrottled.Inc()
			// One rounded value for both the header and the JSON body:
			// a client reading either hint waits the same whole-second
			// interval (the body used to carry the raw fractional wait,
			// under-waiting the header and sometimes reading 0).
			secs := httpx.RetryAfterSeconds(retry)
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			_ = json.NewEncoder(w).Encode(throttleBody{
				Error:      "tenant quota exceeded",
				Tenant:     tenant,
				RetryAfter: float64(secs),
			})
		})
	}
}

// Metered reports whether a path is subject to tenant quotas.
func Metered(path string) bool {
	const api, admin = "/api/", "/api/admin/"
	if len(path) < len(api) || path[:len(api)] != api {
		return false
	}
	return len(path) < len(admin) || path[:len(admin)] != admin
}
