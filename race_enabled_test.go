//go:build race

package storypivot

// raceEnabled reports whether the race detector is active. Under -race
// sync.Pool intentionally bypasses its caches, so allocation-count pins
// do not hold.
const raceEnabled = true
