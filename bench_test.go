package storypivot

// Benchmark harness regenerating the paper's evaluation artifacts
// (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
// paper-vs-measured results). Every figure of the paper has a bench
// target here; the full-size sweeps live in cmd/storypivot-bench.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks report domain metrics (events/op, F1, comparisons) through
// b.ReportMetric next to the usual ns/op, and print the statistics-module
// tables once per run via b.Logf (visible with -v).

import (
	"os"
	"sync"
	"testing"
	"time"

	"repro/internal/align"
	"repro/internal/datagen"
	"repro/internal/eval"
	"repro/internal/experiments"
	"repro/internal/identify"
	"repro/internal/stream"
)

// benchCorpus memoises generated corpora across benchmarks so repeated
// b.N iterations measure the pipeline, not the generator.
var benchCorpus = struct {
	sync.Mutex
	m map[int64]*datagen.Corpus
}{m: map[int64]*datagen.Corpus{}}

func corpusFor(b *testing.B, size, sources int, seed int64) *datagen.Corpus {
	b.Helper()
	key := int64(size)<<20 | int64(sources)<<40 | seed
	benchCorpus.Lock()
	defer benchCorpus.Unlock()
	if c, ok := benchCorpus.m[key]; ok {
		return c
	}
	c := datagen.Generate(experiments.CorpusScale(size, sources, seed))
	benchCorpus.m[key] = c
	return c
}

// --- E1 / Figure 7 (Performance): per-event identification time ---------

func benchmarkIdentify(b *testing.B, mode identify.Mode, sketch bool) {
	c := corpusFor(b, 8000, 10, 1)
	parts := c.BySource()
	cfg := identify.DefaultConfig()
	cfg.Mode = mode
	cfg.UseSketchIndex = sketch
	b.ResetTimer()
	events, comparisons := 0, 0
	for i := 0; i < b.N; i++ {
		alloc := &identify.IDAlloc{}
		events, comparisons = 0, 0
		for src, sns := range parts {
			id := identify.New(src, cfg, alloc)
			for _, s := range sns {
				id.Process(s)
			}
			st := id.Stats()
			events += st.Processed
			comparisons += st.Comparisons
		}
	}
	b.ReportMetric(float64(events), "events/op")
	b.ReportMetric(float64(comparisons), "comparisons/op")
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(events)/1e3, "us/event")
}

func BenchmarkE1_PerformanceVsEventsComplete(b *testing.B) {
	benchmarkIdentify(b, identify.ModeComplete, false)
}

func BenchmarkE1_PerformanceVsEventsTemporal(b *testing.B) {
	benchmarkIdentify(b, identify.ModeTemporal, false)
}

func BenchmarkE1_PerformanceVsEventsTemporalSketch(b *testing.B) {
	benchmarkIdentify(b, identify.ModeTemporal, true)
}

// BenchmarkE1_Sweep prints the full Figure 7 performance table.
func BenchmarkE1_Sweep(b *testing.B) {
	cfg := experiments.E1Config{Sizes: []int{1000, 4000, 12000}, Sources: 10, Seed: 1}
	var rows []experiments.E1Row
	for i := 0; i < b.N; i++ {
		rows = experiments.RunE1(cfg)
	}
	logTable(b, experiments.E1Table(rows))
}

// --- E2 / Figure 7 (Quality): F-measure vs #events ----------------------

func BenchmarkE2_QualityVsEvents(b *testing.B) {
	cfg := experiments.E2Config{Sizes: []int{2000, 6000}, Sources: 10, Seed: 2}
	var rows []experiments.E2Row
	for i := 0; i < b.N; i++ {
		rows = experiments.RunE2(cfg)
	}
	logTable(b, experiments.E2Table(rows))
	best := 0.0
	for _, r := range rows {
		if r.F1 > best {
			best = r.F1
		}
	}
	b.ReportMetric(best, "bestF1")
}

// TestE2_QualityTable asserts the Figure 7 quality shape on a fixed
// corpus: temporal >= complete, alignment lifts F over identification.
func TestE2_QualityTable(t *testing.T) {
	rows := experiments.RunE2(experiments.E2Config{Sizes: []int{2500}, Sources: 8, Seed: 2})
	get := func(si, sa string) float64 {
		for _, r := range rows {
			if r.SIMethod == si && r.SAMethod == sa {
				return r.F1
			}
		}
		t.Fatalf("missing %s/%s", si, sa)
		return 0
	}
	if tp, cp := get("temporal", "none"), get("complete", "none"); tp < cp-0.02 {
		t.Errorf("temporal SI %.3f below complete %.3f (paper: temporal wins on evolving stories)", tp, cp)
	}
	if ar, al := get("temporal", "align+refine"), get("temporal", "align"); ar < al-0.05 {
		t.Errorf("refinement degraded alignment: %.3f vs %.3f", ar, al)
	}
}

// --- E3 / Figure 2: window-size ablation ---------------------------------

func BenchmarkE3_WindowSweep(b *testing.B) {
	day := 24 * time.Hour
	cfg := experiments.E3Config{
		Windows: []time.Duration{2 * day, 7 * day, 14 * day, 30 * day},
		Size:    4000, Sources: 6, Seed: 3,
	}
	var rows []experiments.E3Row
	for i := 0; i < b.N; i++ {
		rows = experiments.RunE3(cfg)
	}
	logTable(b, experiments.E3Table(rows))
}

// --- E4 / §2.3: alignment scaling with #sources --------------------------

func BenchmarkE4_AlignmentVsSources(b *testing.B) {
	cfg := experiments.E4Config{SourceCounts: []int{2, 8, 16}, SizePerSrc: 250, Seed: 4}
	var rows []experiments.E4Row
	for i := 0; i < b.N; i++ {
		rows = experiments.RunE4(cfg)
	}
	logTable(b, experiments.E4Table(rows))
}

// --- E5 / §2.4: out-of-order delivery ------------------------------------

func BenchmarkE5_OutOfOrder(b *testing.B) {
	cfg := experiments.E5Config{Fractions: []float64{0, 0.25, 0.5}, MaxDisp: 40, Size: 3000, Sources: 6, Seed: 5}
	var rows []experiments.E5Row
	for i := 0; i < b.N; i++ {
		rows = experiments.RunE5(cfg)
	}
	logTable(b, experiments.E5Table(rows))
}

// TestE5_OutOfOrderQuality asserts graceful degradation.
func TestE5_OutOfOrderQuality(t *testing.T) {
	rows := experiments.RunE5(experiments.E5Config{
		Fractions: []float64{0, 0.5}, MaxDisp: 40, Size: 2000, Sources: 5, Seed: 5,
	})
	if rows[1].F1 < rows[0].F1-0.25 {
		t.Fatalf("out-of-order collapsed quality: %.3f -> %.3f", rows[0].F1, rows[1].F1)
	}
}

// --- E6 / §2.4: sketches vs full similarity ------------------------------

func BenchmarkE6_SketchVsFull(b *testing.B) {
	cfg := experiments.E6Config{Size: 4000, Sources: 8, Seed: 6}
	var rows []experiments.E6Row
	for i := 0; i < b.N; i++ {
		rows = experiments.RunE6(cfg)
	}
	logTable(b, experiments.E6Table(rows))
}

// --- E7 / §2.2: incremental split/merge repair ---------------------------

func BenchmarkE7_IncrementalRepair(b *testing.B) {
	cfg := experiments.E7Config{Size: 3000, Sources: 4, Seed: 7}
	var rows []experiments.E7Row
	for i := 0; i < b.N; i++ {
		rows = experiments.RunE7(cfg)
	}
	logTable(b, experiments.E7Table(rows))
}

// TestE7_SplitMergeQuality asserts repair recovers planted structure.
func TestE7_SplitMergeQuality(t *testing.T) {
	rows := experiments.RunE7(experiments.E7Config{Size: 2000, Sources: 3, Seed: 7})
	single, incr := rows[0], rows[1]
	if incr.Splits+incr.Merges == 0 {
		t.Fatal("incremental repair did nothing on a split/merge corpus")
	}
	if incr.F1 < single.F1-0.02 {
		t.Fatalf("repair degraded F1: %.3f -> %.3f", single.F1, incr.F1)
	}
}

// --- E8 / §2.1: dynamic source addition ----------------------------------

func BenchmarkE8_SourceAddition(b *testing.B) {
	cfg := experiments.E8Config{Sources: 10, SizePerSrc: 250, Seed: 8}
	var rows []experiments.E8Row
	for i := 0; i < b.N; i++ {
		rows = experiments.RunE8(cfg)
	}
	logTable(b, experiments.E8Table(rows))
	if len(rows) == 2 && rows[1].Comparisons > 0 {
		b.ReportMetric(float64(rows[0].Comparisons)/float64(rows[1].Comparisons), "incr/full-comparisons")
	}
}

// --- E9 / Figure 7 dataset panel: end-to-end throughput ------------------

func BenchmarkE9_EndToEnd(b *testing.B) {
	var row experiments.E9Row
	var err error
	for i := 0; i < b.N; i++ {
		row, err = experiments.RunE9(experiments.E9Config{Size: 8000, Sources: 10, Seed: 9})
		if err != nil {
			b.Fatal(err)
		}
	}
	logTable(b, experiments.E9Table([]experiments.E9Row{row}))
	b.ReportMetric(row.Throughput, "events/s")
	b.ReportMetric(row.F1, "F1")
}

func BenchmarkE9_EndToEndWithStorage(b *testing.B) {
	var row experiments.E9Row
	for i := 0; i < b.N; i++ {
		dir, err := os.MkdirTemp(b.TempDir(), "e9-*")
		if err != nil {
			b.Fatal(err)
		}
		row, err = experiments.RunE9(experiments.E9Config{Size: 8000, Sources: 10, Seed: 9, StorageDir: dir})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.Throughput, "events/s")
}

// --- E10 / Figure 1d: refinement corrections ------------------------------

func BenchmarkE10_Refinement(b *testing.B) {
	cfg := experiments.E10Config{NoiseRates: []float64{0.05}, Size: 2500, Sources: 5, Seed: 10}
	var rows []experiments.E10Row
	for i := 0; i < b.N; i++ {
		rows = experiments.RunE10(cfg)
	}
	logTable(b, experiments.E10Table(rows))
	if len(rows) == 1 && rows[0].Injected > 0 {
		b.ReportMetric(float64(rows[0].Corrections)/float64(rows[0].Injected), "corrected-frac")
	}
}

// TestE10_RefinementCorrections asserts refinement repairs injected noise.
func TestE10_RefinementCorrections(t *testing.T) {
	rows := experiments.RunE10(experiments.E10Config{
		NoiseRates: []float64{0.05}, Size: 1500, Sources: 4, Seed: 10,
	})
	r := rows[0]
	if r.Corrections == 0 {
		t.Fatal("no corrections on noisy identification")
	}
	if r.FAfter < r.FBefore {
		t.Fatalf("refinement reduced F1: %.3f -> %.3f", r.FBefore, r.FAfter)
	}
}

// --- Ablations: design choices called out in DESIGN.md --------------------

func BenchmarkAblations(b *testing.B) {
	cfg := experiments.AblationConfig{Size: 3000, Sources: 6, Seed: 11}
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		rows = experiments.RunAblations(cfg)
	}
	logTable(b, experiments.AblationTable(rows))
}

// --- Micro-benchmarks on the hot paths ------------------------------------

func BenchmarkIngestPerEvent(b *testing.B) {
	c := corpusFor(b, 8000, 10, 1)
	e := stream.NewEngine(stream.DefaultOptions())
	i := 0
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		if i == len(c.Snippets) {
			b.StopTimer()
			e = stream.NewEngine(stream.DefaultOptions())
			i = 0
			b.StartTimer()
		}
		if _, err := e.Ingest(c.Snippets[i]); err != nil {
			b.Fatal(err)
		}
		i++
	}
}

func BenchmarkAlignFull(b *testing.B) {
	c := corpusFor(b, 6000, 8, 2)
	ids := identify.RunAll(c.Snippets, identify.DefaultConfig(), nil)
	bySource := identify.StoriesBySource(ids)
	truth := experiments.TruthAssignment(c)
	b.ResetTimer()
	var f1 float64
	for n := 0; n < b.N; n++ {
		res := align.Align(bySource, align.DefaultConfig())
		f1 = eval.Pairwise(eval.FromIntegrated(res.Integrated), truth).F1
	}
	b.ReportMetric(f1, "F1")
}

func logTable(b *testing.B, t *experiments.Table) {
	var sb tableBuffer
	t.Fprint(&sb)
	b.Log(sb.String())
}

type tableBuffer struct{ data []byte }

func (t *tableBuffer) Write(p []byte) (int, error) {
	t.data = append(t.data, p...)
	return len(p), nil
}
func (t *tableBuffer) String() string { return string(t.data) }
