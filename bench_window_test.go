package storypivot

// Bounded-memory soak benchmarks: a compressed-clock infinite-feed
// simulation (two years of short-lived stories) through the pipeline
// with the retirement window on vs off. Each soak reports the heap at
// the midpoint and end of the stream — the on-configuration must hold
// the two roughly equal (flat slope) while the off-configuration grows —
// plus the resident story count and retire/reactivate totals. The query
// benchmarks replay the differential's query panel against the soaked
// pipelines so the tail-latency effect of the bounded active set is
// visible. scripts/bench.sh turns the section into BENCH_window.json.
//
// Run with:
//
//	go test -run '^$' -bench 'BenchmarkWindow' -benchmem
import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/datagen"
	"repro/internal/experiments"
)

const (
	windowSoakEvents = 20000
	windowSoakW      = 14 * 24 * time.Hour
)

// windowSoakSize is the soak stream length; STORYPIVOT_SOAK_EVENTS
// overrides it (the CI smoke shrinks the stream — the unbounded soak is
// superlinear in it by design).
func windowSoakSize() int {
	if s := os.Getenv("STORYPIVOT_SOAK_EVENTS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return windowSoakEvents
}

// windowSoakCorpus compresses the clock: many short-lived stories over a
// long span, the workload whose story count grows without bound unless
// the window retires it.
func windowSoakCorpus() *datagen.Corpus {
	cfg := experiments.CorpusScale(windowSoakSize(), 6, 17)
	cfg.Span = 2 * 366 * 24 * time.Hour
	cfg.MeanStoryLife = 5 * 24 * time.Hour
	return datagen.Generate(cfg)
}

func heapMB() float64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return float64(ms.HeapAlloc) / (1 << 20)
}

// residentStories counts per-source stories via the published result —
// the same footprint Snapshot().Resident reports for a windowed run.
func residentStories(p *Pipeline) int {
	n := 0
	for _, is := range p.Result().Integrated() {
		n += is.Len()
	}
	return n
}

func benchWindowSoak(b *testing.B, retireOn bool) {
	corpus := windowSoakCorpus()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		var opts []Option
		if retireOn {
			opts = append(opts, WithRetireWindow(windowSoakW), WithRetireDir(b.TempDir()))
		}
		p, err := New(opts...)
		if err != nil {
			b.Fatal(err)
		}
		half := len(corpus.Snippets) / 2
		b.StartTimer()
		for j, sn := range corpus.Snippets {
			if err := p.Ingest(sn.Clone()); err != nil {
				b.Fatal(err)
			}
			if (j+1)%256 == 0 {
				p.Result()
			}
			if j+1 == half {
				b.StopTimer()
				b.ReportMetric(heapMB(), "heap_mid_MB")
				b.StartTimer()
			}
		}
		p.Result()
		b.StopTimer()
		b.ReportMetric(heapMB(), "heap_end_MB")
		if retireOn {
			v := p.Retire().Snapshot()
			b.ReportMetric(float64(v.Resident), "resident")
			b.ReportMetric(float64(v.Retired), "retired")
			b.ReportMetric(float64(v.Reactivated), "reactivated")
		} else {
			b.ReportMetric(float64(residentStories(p)), "resident")
		}
		p.Close()
		b.StartTimer()
	}
}

func BenchmarkWindowSoakOn(b *testing.B)  { benchWindowSoak(b, true) }
func BenchmarkWindowSoakOff(b *testing.B) { benchWindowSoak(b, false) }

// Query benchmarks over the soaked pipelines: same panel, same corpus,
// bounded vs unbounded active set.
var windowBench struct {
	sync.Once
	on, off  *Pipeline
	entities []Entity
	queries  []string
}

func windowBenchSetup(b *testing.B) {
	b.Helper()
	windowBench.Do(func() {
		corpus := windowSoakCorpus()
		soak := func(p *Pipeline) {
			for j, sn := range corpus.Snippets {
				if err := p.Ingest(sn.Clone()); err != nil {
					b.Fatal(err)
				}
				if (j+1)%256 == 0 {
					p.Result()
				}
			}
			p.Result()
		}
		dir := b.TempDir()
		on, err := New(WithRetireWindow(windowSoakW), WithRetireDir(dir))
		if err != nil {
			b.Fatal(err)
		}
		off, err := New()
		if err != nil {
			b.Fatal(err)
		}
		soak(on)
		soak(off)
		windowBench.on, windowBench.off = on, off
		windowBench.entities = panelEntities(corpus, 6)[1:] // drop the planted miss
		windowBench.queries = panelQueries(corpus, 8)[2:]   // drop miss and empty
	})
}

func BenchmarkWindowQueryOn(b *testing.B) {
	windowBenchSetup(b)
	p, qs, es := windowBench.on, windowBench.queries, windowBench.entities
	benchQuery(b, func(i int) {
		if i%2 == 0 {
			p.SearchN(qs[i%len(qs)], 0, 50)
		} else {
			p.StoriesByEntityN(es[i%len(es)], 0, 50)
		}
	})
}

func BenchmarkWindowQueryOff(b *testing.B) {
	windowBenchSetup(b)
	p, qs, es := windowBench.off, windowBench.queries, windowBench.entities
	benchQuery(b, func(i int) {
		if i%2 == 0 {
			p.SearchN(qs[i%len(qs)], 0, 50)
		} else {
			p.StoriesByEntityN(es[i%len(es)], 0, 50)
		}
	})
}
