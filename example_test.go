package storypivot_test

import (
	"fmt"
	"time"

	storypivot "repro"
)

func day(d int) time.Time { return time.Date(2014, 7, d, 0, 0, 0, 0, time.UTC) }

// The MH17 mini-corpus used across the examples.
func exampleDocs() []*storypivot.Document {
	return []*storypivot.Document{
		{Source: "nyt", URL: "http://nytimes.com/a", Published: day(17),
			Title: "Jetliner Explodes over Ukraine",
			Body:  "A Malaysia Airlines plane crashed over Ukraine after being shot down by a missile."},
		{Source: "wsj", URL: "http://wsj.com/b", Published: day(17),
			Title: "Passenger Plane Shot Down over Ukraine",
			Body:  "A Malaysia Airlines plane was shot down by a missile and crashed over Ukraine."},
		{Source: "nyt", URL: "http://nytimes.com/c", Published: day(18),
			Title: "Investigation of the Ukraine Crash Begins",
			Body:  "Officials investigating the crash over Ukraine said the plane was shot down."},
	}
}

// Building a pipeline, adding documents, and reading the cross-source
// result.
func ExampleNew() {
	p, _ := storypivot.New()
	defer p.Close()
	for _, d := range exampleDocs() {
		p.AddDocument(d)
	}
	res := p.Result()
	fmt.Printf("multi-source stories: %d\n", len(res.MultiSource()))
	// Output: multi-source stories: 1
}

// Free-text search over story vocabularies.
func ExamplePipeline_Search() {
	p, _ := storypivot.New()
	defer p.Close()
	for _, d := range exampleDocs() {
		p.AddDocument(d)
	}
	hits := p.Search("plane crash missile")
	fmt.Println(len(hits) > 0)
	// Output: true
}

// Chronological entity timelines for the casual-reader use case.
func ExamplePipeline_Timeline() {
	p, _ := storypivot.New()
	defer p.Close()
	for _, d := range exampleDocs() {
		p.AddDocument(d)
	}
	tl := p.Timeline("UKR")
	fmt.Println(len(tl) >= 3)
	// Output: true
}

// Contrasting how each source covers an aligned story.
func ExamplePerspectives() {
	p, _ := storypivot.New()
	defer p.Close()
	for _, d := range exampleDocs() {
		p.AddDocument(d)
	}
	multi := p.Result().MultiSource()
	if len(multi) == 0 {
		return
	}
	pers := storypivot.Perspectives(multi[0])
	fmt.Println(len(pers))
	// Output: 2
}

// Resolving a story's entities against the knowledge base (paper §3).
func ExamplePipeline_Context() {
	p, _ := storypivot.New(storypivot.WithKnowledgeBase(storypivot.SeedKnowledgeBase()))
	defer p.Close()
	for _, d := range exampleDocs() {
		p.AddDocument(d)
	}
	multi := p.Result().MultiSource()
	if len(multi) == 0 {
		return
	}
	ctx := p.Context(multi[0])
	for _, rec := range ctx.Known {
		if rec.ID == "UKR" {
			fmt.Println(rec.Label, "-", rec.Type)
		}
	}
	// Output: Ukraine - country
}

// Ranking sources by timeliness, coverage and exclusivity.
func ExamplePipeline_SourceProfiles() {
	p, _ := storypivot.New()
	defer p.Close()
	for _, d := range exampleDocs() {
		p.AddDocument(d)
	}
	for _, pr := range p.SourceProfiles() {
		fmt.Printf("%s: %d snippets\n", pr.Source, pr.Snippets)
	}
	// Output:
	// nyt: 4 snippets
	// wsj: 2 snippets
}
