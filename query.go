package storypivot

import (
	"sort"
	"strings"

	"repro/internal/text"
)

// Query helpers implement the demo's exploration interactions (paper
// §4.2: "queries will consist of enquiries about specified real-world
// events or entities").
//
// Two execution paths exist. The default serves every query from the
// incremental index (internal/index): entity and term postings plus
// per-entity timeline segments, updated by delta on every alignment
// pass, so query cost scales with the result set instead of the corpus.
// WithScanQueries(true) selects the original full-scan implementations,
// kept as the correctness oracle — the differential tests assert the
// two paths return identical results.

// StoriesByEntity returns the integrated stories mentioning the entity,
// ordered by how prominently they mention it (descending mention count,
// ties by ascending integrated ID).
func (p *Pipeline) StoriesByEntity(e Entity) []*IntegratedStory {
	out, _ := p.StoriesByEntityN(e, 0, -1)
	return out
}

// StoriesByEntityN is StoriesByEntity with pagination: it returns the
// ranked window [offset, offset+limit) and the total hit count.
// limit < 0 returns everything from offset on.
func (p *Pipeline) StoriesByEntityN(e Entity, offset, limit int) ([]*IntegratedStory, int) {
	if p.scanQueries || p.index == nil {
		return pageOf(p.scanStoriesByEntity(e), offset, limit)
	}
	p.engine.Result() // re-align (and publish) if ingests happened
	return p.index.StoriesByEntity(e, offset, limit)
}

// Search returns integrated stories whose description centroid matches the
// free-text query (tokenised, stopword-filtered, stemmed), ranked by the
// summed centroid weight of the matched terms (ties by ascending
// integrated ID).
func (p *Pipeline) Search(query string) []*IntegratedStory {
	out, _ := p.SearchN(query, 0, -1)
	return out
}

// SearchN is Search with pagination: it returns the ranked window
// [offset, offset+limit) and the total hit count. limit < 0 returns
// everything from offset on.
func (p *Pipeline) SearchN(query string, offset, limit int) ([]*IntegratedStory, int) {
	if p.scanQueries || p.index == nil {
		return pageOf(p.scanSearch(query), offset, limit)
	}
	p.engine.Result()
	return p.index.Search(query, offset, limit)
}

// SearchScoredN is SearchN plus the per-result ranking scores. The
// scores are what a scatter-gather router needs to merge pages from
// several shards under the exact single-node ordering (score descending,
// ties by ascending integrated ID); they are not part of the public
// response envelope unless explicitly requested.
func (p *Pipeline) SearchScoredN(query string, offset, limit int) ([]*IntegratedStory, []float64, int) {
	if p.scanQueries || p.index == nil {
		all, scores := p.scanSearchScored(query)
		out, total := pageOf(all, offset, limit)
		s, _ := pageOf(scores, offset, limit)
		return out, s, total
	}
	p.engine.Result()
	return p.index.SearchScored(query, offset, limit)
}

// StoriesByEntityScoredN is StoriesByEntityN plus the per-result ranking
// scores, for the same router-side merge as SearchScoredN.
func (p *Pipeline) StoriesByEntityScoredN(e Entity, offset, limit int) ([]*IntegratedStory, []float64, int) {
	if p.scanQueries || p.index == nil {
		all, scores := p.scanStoriesByEntityScored(e)
		out, total := pageOf(all, offset, limit)
		s, _ := pageOf(scores, offset, limit)
		return out, s, total
	}
	p.engine.Result()
	return p.index.StoriesByEntityScored(e, offset, limit)
}

// Timeline returns the chronological snippet sequence for an entity across
// all integrated stories — the "casual reader" view (paper §3: "investi-
// gating the timeline of a story").
func (p *Pipeline) Timeline(e Entity) []*Snippet {
	out, _ := p.TimelineN(e, 0, -1)
	return out
}

// TimelineN is Timeline with pagination: it returns the chronological
// window [offset, offset+limit) and the total snippet count. limit < 0
// returns everything from offset on.
func (p *Pipeline) TimelineN(e Entity, offset, limit int) ([]*Snippet, int) {
	if p.scanQueries || p.index == nil {
		return pageOf(p.scanTimeline(e), offset, limit)
	}
	p.engine.Result()
	return p.index.Timeline(e, offset, limit)
}

// pageOf windows a fully materialised result list (the scan path's
// pagination).
func pageOf[T any](all []T, offset, limit int) ([]T, int) {
	total := len(all)
	if offset < 0 {
		offset = 0
	}
	if offset > total {
		offset = total
	}
	hi := total
	if limit >= 0 && offset+limit < total {
		hi = offset + limit
	}
	return all[offset:hi], total
}

// scanStoriesByEntity is the legacy full-scan implementation: it walks
// every integrated story and materialises its merged entity-frequency
// map. Retained as the correctness oracle for the indexed path.
func (p *Pipeline) scanStoriesByEntity(e Entity) []*IntegratedStory {
	out, _ := p.scanStoriesByEntityScored(e)
	return out
}

func (p *Pipeline) scanStoriesByEntityScored(e Entity) ([]*IntegratedStory, []float64) {
	type scored struct {
		is    *IntegratedStory
		count int
	}
	var hits []scored
	for _, is := range p.Result().Integrated() {
		if c := is.EntityFreq()[e]; c > 0 {
			hits = append(hits, scored{is, c})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].count != hits[j].count {
			return hits[i].count > hits[j].count
		}
		return hits[i].is.ID < hits[j].is.ID
	})
	out := make([]*IntegratedStory, len(hits))
	scores := make([]float64, len(hits))
	for i, h := range hits {
		out[i] = h.is
		scores[i] = float64(h.count)
	}
	return out, scores
}

// scanSearch is the legacy full-scan search: it materialises every
// integrated story's merged centroid map per query. Retained as the
// correctness oracle for the indexed path.
func (p *Pipeline) scanSearch(query string) []*IntegratedStory {
	out, _ := p.scanSearchScored(query)
	return out
}

func (p *Pipeline) scanSearchScored(query string) ([]*IntegratedStory, []float64) {
	toks := text.Pipeline(query)
	if len(toks) == 0 {
		return []*IntegratedStory{}, []float64{}
	}
	type scored struct {
		is *IntegratedStory
		w  float64
	}
	var hits []scored
	for _, is := range p.Result().Integrated() {
		centroid := is.Centroid()
		var w float64
		for _, tok := range toks {
			w += centroid[tok]
		}
		if w > 0 {
			hits = append(hits, scored{is, w})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].w != hits[j].w {
			return hits[i].w > hits[j].w
		}
		return hits[i].is.ID < hits[j].is.ID
	})
	out := make([]*IntegratedStory, len(hits))
	scores := make([]float64, len(hits))
	for i, h := range hits {
		out[i] = h.is
		scores[i] = h.w
	}
	return out, scores
}

// scanTimeline is the legacy full-scan timeline: it visits every snippet
// of every integrated story. Retained as the correctness oracle for the
// indexed path.
func (p *Pipeline) scanTimeline(e Entity) []*Snippet {
	out := []*Snippet{}
	for _, is := range p.Result().Integrated() {
		for _, sn := range is.Snippets() {
			if sn.HasEntity(e) {
				out = append(out, sn)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].Timestamp.Equal(out[j].Timestamp) {
			return out[i].Timestamp.Before(out[j].Timestamp)
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// Perspectives summarises how each source covers an integrated story: the
// per-source snippet counts and top description terms, powering the
// "contrast source bias" use case (paper §3, Expert Scientist).
func Perspectives(is *IntegratedStory) map[SourceID]Perspective {
	out := make(map[SourceID]Perspective)
	for _, m := range is.Members {
		p := out[m.Source]
		p.Snippets += m.Len()
		if p.topTerms == nil {
			p.topTerms = map[string]float64{}
		}
		for tok, w := range m.CentroidMap() {
			p.topTerms[tok] += w
		}
		out[m.Source] = p
	}
	for src, p := range out {
		type tw struct {
			tok string
			w   float64
		}
		all := make([]tw, 0, len(p.topTerms))
		for tok, w := range p.topTerms {
			all = append(all, tw{tok, w})
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].w != all[j].w {
				return all[i].w > all[j].w
			}
			return all[i].tok < all[j].tok
		})
		n := 5
		if len(all) < n {
			n = len(all)
		}
		terms := make([]string, n)
		for i := 0; i < n; i++ {
			terms[i] = all[i].tok
		}
		p.TopTerms = terms
		p.topTerms = nil
		out[src] = p
	}
	return out
}

// Perspective is one source's view of an integrated story.
type Perspective struct {
	Snippets int
	TopTerms []string

	topTerms map[string]float64 // scratch during aggregation
}

// String renders the perspective compactly.
func (p Perspective) String() string {
	return strings.Join(p.TopTerms, ", ")
}
